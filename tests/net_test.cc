// Tests for the NetLink proxy layer: message forwarding, latency charging,
// reply-port rewriting, proxy unwrapping, out-of-line flattening between
// kernels, and dead-target propagation.

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/net/net_link.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

class NetTest : public ::testing::Test {
 protected:
  NetTest() {
    Kernel::Config config;
    config.frames = 96;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    config.name = "A";
    host_a_ = std::make_unique<Kernel>(config);
    config.name = "B";
    host_b_ = std::make_unique<Kernel>(config);
    link_ = std::make_unique<NetLink>(&host_a_->vm(), &host_b_->vm(), &clock_, kNormaLatency);
  }

  SimClock clock_;
  std::unique_ptr<Kernel> host_a_;
  std::unique_ptr<Kernel> host_b_;
  std::unique_ptr<NetLink> link_;
};

TEST_F(NetTest, ForwardsMessages) {
  PortPair on_b = PortAllocate("service-on-b");
  SendRight proxy = link_->ProxyForA(on_b.send);
  Message msg(11);
  msg.PushU32(99);
  ASSERT_EQ(MsgSend(proxy, std::move(msg)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 11u);
  EXPECT_EQ(got.value().TakeU32().value(), 99u);
  EXPECT_EQ(link_->messages_forwarded(), 1u);
}

TEST_F(NetTest, ChargesLatency) {
  PortPair on_b = PortAllocate();
  SendRight proxy = link_->ProxyForA(on_b.send);
  Message msg(1);
  msg.PushData(std::string(1000, 'x').data(), 1000);
  ASSERT_EQ(MsgSend(proxy, std::move(msg)), KernReturn::kSuccess);
  ASSERT_TRUE(MsgReceive(on_b.receive, std::chrono::seconds(5)).ok());
  // NORMA: per_msg 200us + per_byte 80ns * ~1000B.
  EXPECT_GE(clock_.NowNs(), kNormaLatency.per_msg_ns);
}

TEST_F(NetTest, ProxyIsCachedPerTarget) {
  PortPair on_b = PortAllocate();
  SendRight p1 = link_->ProxyForA(on_b.send);
  SendRight p2 = link_->ProxyForA(on_b.send);
  EXPECT_EQ(p1.id(), p2.id());
}

TEST_F(NetTest, ReplyPortCrossesBackThroughLink) {
  PortPair service_on_b = PortAllocate("svc");
  SendRight proxy = link_->ProxyForA(service_on_b.send);

  std::thread server([recv = std::move(service_on_b.receive)]() mutable {
    Result<Message> req = MsgReceive(recv, std::chrono::seconds(5));
    ASSERT_TRUE(req.ok());
    Message reply(2);
    reply.PushU32(req.value().TakeU32().value() * 2);
    // The reply port the server sees is a proxy; replying crosses the link.
    MsgSend(req.value().reply_port(), std::move(reply));
  });
  Message request(1);
  request.PushU32(21);
  Result<Message> reply = MsgRpc(proxy, std::move(request), kWaitForever, std::chrono::seconds(5));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().TakeU32().value(), 42u);
  // Request + reply both crossed.
  EXPECT_EQ(link_->messages_forwarded(), 2u);
  server.join();
}

TEST_F(NetTest, ProxyOfProxyUnwraps) {
  // A right that is already a proxy for the reverse direction gets
  // unwrapped, not double-proxied: ping-pong does not accrete latency
  // layers.
  PortPair on_b = PortAllocate("b-port");
  SendRight proxy_on_a = link_->ProxyForA(on_b.send);
  // Send the proxy right across the link inside a message to a B port:
  PortPair sink_on_b = PortAllocate("sink");
  SendRight sink_proxy = link_->ProxyForA(sink_on_b.send);
  Message carrier(3);
  carrier.PushPort(proxy_on_a);
  ASSERT_EQ(MsgSend(sink_proxy, std::move(carrier)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(sink_on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  Result<SendRight> carried = got.value().TakePort();
  ASSERT_TRUE(carried.ok());
  // B received the *real* port, not a proxy-of-proxy.
  EXPECT_EQ(carried.value().id(), on_b.send.id());
}

TEST_F(NetTest, OolMemoryFlattensAcrossKernels) {
  std::shared_ptr<Task> task_a = host_a_->CreateTask();
  std::shared_ptr<Task> task_b = host_b_->CreateTask();
  VmOffset src = task_a->VmAllocate(2 * kPage).value();
  std::vector<uint8_t> payload(2 * kPage);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 13);
  }
  ASSERT_EQ(task_a->Write(src, payload.data(), payload.size()), KernReturn::kSuccess);

  PortPair on_b = PortAllocate("ool-sink");
  SendRight proxy = link_->ProxyForA(on_b.send);
  auto copy = host_a_->vm().CopyIn(task_a->vm_context(), src, 2 * kPage).value();
  Message msg(4);
  msg.PushOol(copy, 2 * kPage);
  ASSERT_EQ(MsgSend(proxy, std::move(msg)), KernReturn::kSuccess);

  Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  Result<OolItem> ool = got.value().TakeOol();
  ASSERT_TRUE(ool.ok());
  auto rebuilt = std::static_pointer_cast<VmMapCopy>(ool.value().copy);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(rebuilt->system(), &host_b_->vm());  // Lives in B's kernel now.
  Result<VmOffset> dst = host_b_->vm().CopyOut(task_b->vm_context(), rebuilt);
  ASSERT_TRUE(dst.ok());
  std::vector<uint8_t> out(2 * kPage);
  ASSERT_EQ(task_b->Read(dst.value(), out.data(), out.size()), KernReturn::kSuccess);
  EXPECT_EQ(out, payload);
  // Bytes were charged on the wire.
  EXPECT_GE(link_->bytes_forwarded(), 2 * kPage);
  task_a.reset();
  task_b.reset();
}

TEST_F(NetTest, DeadTargetKillsProxy) {
  SendRight proxy;
  {
    PortPair on_b = PortAllocate("dying");
    proxy = link_->ProxyForA(on_b.send);
    ASSERT_EQ(MsgSend(proxy, Message(1)), KernReturn::kSuccess);
    // Receive right dropped here: target dies.
  }
  // Subsequent sends eventually observe port death (the forwarder kills
  // the proxy when the forward fails).
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  KernReturn kr = KernReturn::kSuccess;
  while (std::chrono::steady_clock::now() < deadline) {
    kr = MsgSend(proxy, Message(2), kPoll);
    if (kr == KernReturn::kPortDead) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(kr, KernReturn::kPortDead);
}

TEST_F(NetTest, LatencyRegimesOrdering) {
  // §7: UMA < NUMA < NORMA by orders of magnitude.
  EXPECT_LT(kUmaLatency.per_msg_ns, kNumaLatency.per_msg_ns);
  EXPECT_LT(kNumaLatency.per_msg_ns, kNormaLatency.per_msg_ns);
  EXPECT_GE(kNumaLatency.per_msg_ns / kUmaLatency.per_msg_ns, 10u);   // ~10x (Butterfly).
  EXPECT_GE(kNormaLatency.per_msg_ns / kNumaLatency.per_msg_ns, 10u); // 100s of us (HyperCube).
}

TEST_F(NetTest, InjectedDropLosesUnreliableMessages) {
  FaultInjector inj(7);
  inj.SetSchedule(NetLink::kFaultDrop, {0});  // Drop the first transmission.
  NetFaultConfig faults;
  faults.injector = &inj;
  NetLink lossy(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  PortPair on_b = PortAllocate("lossy-sink");
  SendRight proxy = lossy.ProxyForA(on_b.send);
  Message first(1);
  ASSERT_EQ(MsgSend(proxy, std::move(first)), KernReturn::kSuccess);
  Message second(2);
  ASSERT_EQ(MsgSend(proxy, std::move(second)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 2u);  // The first died on the wire.
  EXPECT_EQ(lossy.messages_lost(), 1u);
  EXPECT_EQ(lossy.messages_dropped(), 1u);
  EXPECT_EQ(lossy.retransmits(), 0u);  // Unreliable: no recovery attempted.
}

TEST_F(NetTest, ReliableModeRetransmitsThroughDrops) {
  FaultInjector inj(7);
  inj.SetSchedule(NetLink::kFaultDrop, {0, 1});  // First two attempts fail.
  NetFaultConfig faults;
  faults.injector = &inj;
  faults.reliable = true;
  NetLink lossy(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  PortPair on_b = PortAllocate("reliable-sink");
  SendRight proxy = lossy.ProxyForA(on_b.send);
  Message msg(9);
  msg.PushU32(33);
  ASSERT_EQ(MsgSend(proxy, std::move(msg)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 9u);
  EXPECT_EQ(got.value().TakeU32().value(), 33u);
  EXPECT_EQ(lossy.retransmits(), 2u);
  EXPECT_EQ(lossy.messages_lost(), 0u);
  // Exponential backoff was charged in virtual time: base + 2*base.
  EXPECT_GE(clock_.NowNs(), faults.retransmit_base_ns * 3);
}

TEST_F(NetTest, PartitionLosesEvenReliableTraffic) {
  NetFaultConfig faults;
  faults.reliable = true;
  faults.max_retransmits = 3;
  NetLink plink(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  PortPair on_b = PortAllocate("partition-sink");
  SendRight proxy = plink.ProxyForA(on_b.send);
  plink.SetPartitioned(true);
  ASSERT_EQ(MsgSend(proxy, Message(1)), KernReturn::kSuccess);
  EXPECT_FALSE(MsgReceive(on_b.receive, std::chrono::milliseconds(300)).ok());
  EXPECT_EQ(plink.messages_lost(), 1u);
  EXPECT_EQ(plink.retransmits(), 3u);  // The budget was spent first.
  // Healing restores the flow.
  plink.SetPartitioned(false);
  ASSERT_EQ(MsgSend(proxy, Message(2)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 2u);
}

TEST_F(NetTest, DuplicatesDeliveredUnreliablySuppressedReliably) {
  // Unreliable: the duplicate reaches the receiver twice.
  FaultInjector inj(3);
  inj.SetSchedule(NetLink::kFaultDuplicate, {0});
  NetFaultConfig faults;
  faults.injector = &inj;
  NetLink dup(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  PortPair on_b = PortAllocate("dup-sink");
  SendRight proxy = dup.ProxyForA(on_b.send);
  Message msg(5);
  msg.PushU32(11);
  ASSERT_EQ(MsgSend(proxy, std::move(msg)), KernReturn::kSuccess);
  Result<Message> one = MsgReceive(on_b.receive, std::chrono::seconds(5));
  Result<Message> two = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(one.value().id(), 5u);
  EXPECT_EQ(two.value().id(), 5u);
  EXPECT_EQ(dup.messages_duplicated(), 1u);

  // Reliable: sequence numbers suppress the duplicate delivery.
  FaultInjector inj2(3);
  inj2.SetSchedule(NetLink::kFaultDuplicate, {0});
  NetFaultConfig rfaults;
  rfaults.injector = &inj2;
  rfaults.reliable = true;
  NetLink rel(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, rfaults);
  PortPair on_b2 = PortAllocate("dedup-sink");
  SendRight rproxy = rel.ProxyForA(on_b2.send);
  Message msg2(6);
  ASSERT_EQ(MsgSend(rproxy, std::move(msg2)), KernReturn::kSuccess);
  ASSERT_TRUE(MsgReceive(on_b2.receive, std::chrono::seconds(5)).ok());
  EXPECT_FALSE(MsgReceive(on_b2.receive, std::chrono::milliseconds(200)).ok());
  EXPECT_EQ(rel.duplicates_suppressed(), 1u);
  EXPECT_EQ(rel.messages_duplicated(), 0u);
}

}  // namespace
}  // namespace mach
