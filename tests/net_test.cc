// Tests for the NetLink proxy layer: message forwarding, latency charging,
// reply-port rewriting, proxy unwrapping, out-of-line flattening between
// kernels, and dead-target propagation.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/net/net_link.h"
#include "src/pager/data_manager.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

class NetTest : public ::testing::Test {
 protected:
  NetTest() {
    Kernel::Config config;
    config.frames = 96;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    config.name = "A";
    host_a_ = std::make_unique<Kernel>(config);
    config.name = "B";
    host_b_ = std::make_unique<Kernel>(config);
    link_ = std::make_unique<NetLink>(&host_a_->vm(), &host_b_->vm(), &clock_, kNormaLatency);
  }

  SimClock clock_;
  std::unique_ptr<Kernel> host_a_;
  std::unique_ptr<Kernel> host_b_;
  std::unique_ptr<NetLink> link_;
};

TEST_F(NetTest, ForwardsMessages) {
  PortPair on_b = PortAllocate("service-on-b");
  SendRight proxy = link_->ProxyForA(on_b.send);
  Message msg(11);
  msg.PushU32(99);
  ASSERT_EQ(MsgSend(proxy, std::move(msg)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 11u);
  EXPECT_EQ(got.value().TakeU32().value(), 99u);
  EXPECT_EQ(link_->messages_forwarded(), 1u);
}

TEST_F(NetTest, ChargesLatency) {
  PortPair on_b = PortAllocate();
  SendRight proxy = link_->ProxyForA(on_b.send);
  Message msg(1);
  msg.PushData(std::string(1000, 'x').data(), 1000);
  ASSERT_EQ(MsgSend(proxy, std::move(msg)), KernReturn::kSuccess);
  ASSERT_TRUE(MsgReceive(on_b.receive, std::chrono::seconds(5)).ok());
  // NORMA: per_msg 200us + per_byte 80ns * ~1000B.
  EXPECT_GE(clock_.NowNs(), kNormaLatency.per_msg_ns);
}

TEST_F(NetTest, ProxyIsCachedPerTarget) {
  PortPair on_b = PortAllocate();
  SendRight p1 = link_->ProxyForA(on_b.send);
  SendRight p2 = link_->ProxyForA(on_b.send);
  EXPECT_EQ(p1.id(), p2.id());
}

TEST_F(NetTest, ReplyPortCrossesBackThroughLink) {
  PortPair service_on_b = PortAllocate("svc");
  SendRight proxy = link_->ProxyForA(service_on_b.send);

  std::thread server([recv = std::move(service_on_b.receive)]() mutable {
    Result<Message> req = MsgReceive(recv, std::chrono::seconds(5));
    ASSERT_TRUE(req.ok());
    Message reply(2);
    reply.PushU32(req.value().TakeU32().value() * 2);
    // The reply port the server sees is a proxy; replying crosses the link.
    MsgSend(req.value().reply_port(), std::move(reply));
  });
  Message request(1);
  request.PushU32(21);
  Result<Message> reply = MsgRpc(proxy, std::move(request), kWaitForever, std::chrono::seconds(5));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().TakeU32().value(), 42u);
  // Request + reply both crossed.
  EXPECT_EQ(link_->messages_forwarded(), 2u);
  server.join();
}

TEST_F(NetTest, ProxyOfProxyUnwraps) {
  // A right that is already a proxy for the reverse direction gets
  // unwrapped, not double-proxied: ping-pong does not accrete latency
  // layers.
  PortPair on_b = PortAllocate("b-port");
  SendRight proxy_on_a = link_->ProxyForA(on_b.send);
  // Send the proxy right across the link inside a message to a B port:
  PortPair sink_on_b = PortAllocate("sink");
  SendRight sink_proxy = link_->ProxyForA(sink_on_b.send);
  Message carrier(3);
  carrier.PushPort(proxy_on_a);
  ASSERT_EQ(MsgSend(sink_proxy, std::move(carrier)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(sink_on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  Result<SendRight> carried = got.value().TakePort();
  ASSERT_TRUE(carried.ok());
  // B received the *real* port, not a proxy-of-proxy.
  EXPECT_EQ(carried.value().id(), on_b.send.id());
}

TEST_F(NetTest, OolMemoryFlattensAcrossKernels) {
  std::shared_ptr<Task> task_a = host_a_->CreateTask();
  std::shared_ptr<Task> task_b = host_b_->CreateTask();
  VmOffset src = task_a->VmAllocate(2 * kPage).value();
  std::vector<uint8_t> payload(2 * kPage);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 13);
  }
  ASSERT_EQ(task_a->Write(src, payload.data(), payload.size()), KernReturn::kSuccess);

  PortPair on_b = PortAllocate("ool-sink");
  SendRight proxy = link_->ProxyForA(on_b.send);
  auto copy = host_a_->vm().CopyIn(task_a->vm_context(), src, 2 * kPage).value();
  Message msg(4);
  msg.PushOol(copy, 2 * kPage);
  ASSERT_EQ(MsgSend(proxy, std::move(msg)), KernReturn::kSuccess);

  Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  Result<OolItem> ool = got.value().TakeOol();
  ASSERT_TRUE(ool.ok());
  auto rebuilt = std::static_pointer_cast<VmMapCopy>(ool.value().copy);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(rebuilt->system(), &host_b_->vm());  // Lives in B's kernel now.
  Result<VmOffset> dst = host_b_->vm().CopyOut(task_b->vm_context(), rebuilt);
  ASSERT_TRUE(dst.ok());
  std::vector<uint8_t> out(2 * kPage);
  ASSERT_EQ(task_b->Read(dst.value(), out.data(), out.size()), KernReturn::kSuccess);
  EXPECT_EQ(out, payload);
  // Bytes were charged on the wire.
  EXPECT_GE(link_->bytes_forwarded(), 2 * kPage);
  task_a.reset();
  task_b.reset();
}

TEST_F(NetTest, DeadTargetKillsProxyImmediately) {
  SendRight proxy;
  {
    PortPair on_b = PortAllocate("dying");
    proxy = link_->ProxyForA(on_b.send);
    ASSERT_EQ(MsgSend(proxy, Message(1)), KernReturn::kSuccess);
    // Receive right dropped here: target dies, and its death action kills
    // the proxy synchronously — no waiting for the next forward to fail.
  }
  EXPECT_EQ(MsgSend(proxy, Message(2), kPoll), KernReturn::kPortDead);
}

TEST_F(NetTest, LatencyRegimesOrdering) {
  // §7: UMA < NUMA < NORMA by orders of magnitude.
  EXPECT_LT(kUmaLatency.per_msg_ns, kNumaLatency.per_msg_ns);
  EXPECT_LT(kNumaLatency.per_msg_ns, kNormaLatency.per_msg_ns);
  EXPECT_GE(kNumaLatency.per_msg_ns / kUmaLatency.per_msg_ns, 10u);   // ~10x (Butterfly).
  EXPECT_GE(kNormaLatency.per_msg_ns / kNumaLatency.per_msg_ns, 10u); // 100s of us (HyperCube).
}

TEST_F(NetTest, InjectedDropLosesUnreliableMessages) {
  FaultInjector inj(7);
  inj.SetSchedule(NetLink::kFaultDrop, {0});  // Drop the first transmission.
  NetFaultConfig faults;
  faults.injector = &inj;
  NetLink lossy(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  PortPair on_b = PortAllocate("lossy-sink");
  SendRight proxy = lossy.ProxyForA(on_b.send);
  Message first(1);
  ASSERT_EQ(MsgSend(proxy, std::move(first)), KernReturn::kSuccess);
  Message second(2);
  ASSERT_EQ(MsgSend(proxy, std::move(second)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 2u);  // The first died on the wire.
  EXPECT_EQ(lossy.messages_lost(), 1u);
  EXPECT_EQ(lossy.messages_dropped(), 1u);
  EXPECT_EQ(lossy.retransmits(), 0u);  // Unreliable: no recovery attempted.
}

TEST_F(NetTest, ReliableModeRetransmitsThroughDrops) {
  FaultInjector inj(7);
  inj.SetSchedule(NetLink::kFaultDrop, {0, 1});  // First two attempts fail.
  NetFaultConfig faults;
  faults.injector = &inj;
  faults.reliable = true;
  NetLink lossy(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  PortPair on_b = PortAllocate("reliable-sink");
  SendRight proxy = lossy.ProxyForA(on_b.send);
  Message msg(9);
  msg.PushU32(33);
  ASSERT_EQ(MsgSend(proxy, std::move(msg)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 9u);
  EXPECT_EQ(got.value().TakeU32().value(), 33u);
  EXPECT_EQ(lossy.retransmits(), 2u);
  EXPECT_EQ(lossy.messages_lost(), 0u);
  // Exponential backoff was charged in virtual time: base + 2*base.
  EXPECT_GE(clock_.NowNs(), faults.retransmit_base_ns * 3);
}

TEST_F(NetTest, PartitionLosesEvenReliableTraffic) {
  NetFaultConfig faults;
  faults.reliable = true;
  faults.max_retransmits = 3;
  NetLink plink(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  PortPair on_b = PortAllocate("partition-sink");
  SendRight proxy = plink.ProxyForA(on_b.send);
  plink.SetPartitioned(true);
  ASSERT_EQ(MsgSend(proxy, Message(1)), KernReturn::kSuccess);
  EXPECT_FALSE(MsgReceive(on_b.receive, std::chrono::milliseconds(300)).ok());
  EXPECT_EQ(plink.messages_lost(), 1u);
  EXPECT_EQ(plink.retransmits(), 3u);  // The budget was spent first.
  // Healing restores the flow.
  plink.SetPartitioned(false);
  ASSERT_EQ(MsgSend(proxy, Message(2)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 2u);
}

TEST_F(NetTest, DuplicatesDeliveredUnreliablySuppressedReliably) {
  // Unreliable: the duplicate reaches the receiver twice.
  FaultInjector inj(3);
  inj.SetSchedule(NetLink::kFaultDuplicate, {0});
  NetFaultConfig faults;
  faults.injector = &inj;
  NetLink dup(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  PortPair on_b = PortAllocate("dup-sink");
  SendRight proxy = dup.ProxyForA(on_b.send);
  Message msg(5);
  msg.PushU32(11);
  ASSERT_EQ(MsgSend(proxy, std::move(msg)), KernReturn::kSuccess);
  Result<Message> one = MsgReceive(on_b.receive, std::chrono::seconds(5));
  Result<Message> two = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(one.value().id(), 5u);
  EXPECT_EQ(two.value().id(), 5u);
  EXPECT_EQ(dup.messages_duplicated(), 1u);

  // Reliable: sequence numbers suppress the duplicate delivery. Hit 0 of
  // net.duplicate is consulted by the SACK path (a duplicated SACK, merged
  // idempotently); hit 1 replays the whole message.
  FaultInjector inj2(3);
  inj2.SetSchedule(NetLink::kFaultDuplicate, {0, 1});
  NetFaultConfig rfaults;
  rfaults.injector = &inj2;
  rfaults.reliable = true;
  NetLink rel(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, rfaults);
  PortPair on_b2 = PortAllocate("dedup-sink");
  SendRight rproxy = rel.ProxyForA(on_b2.send);
  Message msg2(6);
  ASSERT_EQ(MsgSend(rproxy, std::move(msg2)), KernReturn::kSuccess);
  ASSERT_TRUE(MsgReceive(on_b2.receive, std::chrono::seconds(5)).ok());
  EXPECT_FALSE(MsgReceive(on_b2.receive, std::chrono::milliseconds(200)).ok());
  EXPECT_EQ(rel.sacks_duplicated(), 1u);
  EXPECT_EQ(rel.duplicates_suppressed(), 1u);
  EXPECT_EQ(rel.messages_duplicated(), 0u);
}

// --- Fragmented reliable transport -----------------------------------------

// Helper: an OOL message carrying `pages` pages of a deterministic pattern,
// plus the expected bytes for verification on the far side.
struct OolPayload {
  Message msg{42};
  std::vector<uint8_t> expected;
};

OolPayload MakeOolPayload(Kernel* host, const std::shared_ptr<Task>& task, size_t pages) {
  OolPayload p;
  VmOffset src = task->VmAllocate(pages * kPage).value();
  p.expected.resize(pages * kPage);
  for (size_t i = 0; i < p.expected.size(); ++i) {
    p.expected[i] = static_cast<uint8_t>((i * 131) ^ (i >> 8));
  }
  EXPECT_EQ(task->Write(src, p.expected.data(), p.expected.size()), KernReturn::kSuccess);
  auto copy = host->vm().CopyIn(task->vm_context(), src, pages * kPage).value();
  p.msg.PushOol(copy, pages * kPage);
  return p;
}

// Helper: receive an OOL message on host B and check it byte-for-byte.
void ExpectOolDelivered(Kernel* host_b, const std::shared_ptr<Task>& task_b,
                        ReceiveRight& recv, const std::vector<uint8_t>& expected) {
  Result<Message> got = MsgReceive(recv, std::chrono::seconds(10));
  ASSERT_TRUE(got.ok());
  Result<OolItem> ool = got.value().TakeOol();
  ASSERT_TRUE(ool.ok());
  auto rebuilt = std::static_pointer_cast<VmMapCopy>(ool.value().copy);
  ASSERT_NE(rebuilt, nullptr);
  Result<VmOffset> dst = host_b->vm().CopyOut(task_b->vm_context(), rebuilt);
  ASSERT_TRUE(dst.ok());
  std::vector<uint8_t> out(expected.size());
  ASSERT_EQ(task_b->Read(dst.value(), out.data(), out.size()), KernReturn::kSuccess);
  EXPECT_EQ(out, expected);
}

TEST_F(NetTest, FragmentedTransferRetransmitsOnlyTheMissingFragment) {
  // 8 pages = 8 fragments; fragment #3 of the first burst is dropped. The
  // SACK flags exactly that fragment, so the retransmission pass resends one
  // fragment — 4 KiB on the wire, not 32 KiB.
  FaultInjector inj(11);
  inj.SetSchedule(NetLink::kFaultFragDrop, {3});
  NetFaultConfig faults;
  faults.injector = &inj;
  faults.reliable = true;
  NetLink lossy(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  std::shared_ptr<Task> task_a = host_a_->CreateTask();
  std::shared_ptr<Task> task_b = host_b_->CreateTask();
  PortPair on_b = PortAllocate("frag-sink");
  SendRight proxy = lossy.ProxyForA(on_b.send);

  OolPayload p = MakeOolPayload(host_a_.get(), task_a, 8);
  ASSERT_EQ(MsgSend(proxy, std::move(p.msg)), KernReturn::kSuccess);
  ExpectOolDelivered(host_b_.get(), task_b, on_b.receive, p.expected);

  EXPECT_EQ(lossy.fragments_sent(), 9u);           // 8 + the one retry.
  EXPECT_EQ(lossy.fragments_retransmitted(), 1u);
  EXPECT_EQ(lossy.bytes_retransmitted(), 4096u);
  EXPECT_EQ(lossy.sacks_sent(), 2u);               // One per delivering burst.
  EXPECT_EQ(lossy.retransmits(), 1u);              // One RTO expiry.
  EXPECT_EQ(lossy.messages_dropped(), 1u);
  EXPECT_EQ(lossy.messages_lost(), 0u);
  task_a.reset();
  task_b.reset();
}

TEST_F(NetTest, OutOfOrderFragmentArrivalReassembles) {
  // The first fragment is reordered past the SACK: it arrives, but the SACK
  // that already left does not cover it, so the sender retransmits it and
  // the receiver suppresses the duplicate. The payload is still intact.
  FaultInjector inj(12);
  inj.SetSchedule(NetLink::kFaultReorder, {0});
  NetFaultConfig faults;
  faults.injector = &inj;
  faults.reliable = true;
  NetLink link(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  std::shared_ptr<Task> task_a = host_a_->CreateTask();
  std::shared_ptr<Task> task_b = host_b_->CreateTask();
  PortPair on_b = PortAllocate("reorder-sink");
  SendRight proxy = link.ProxyForA(on_b.send);

  OolPayload p = MakeOolPayload(host_a_.get(), task_a, 2);
  ASSERT_EQ(MsgSend(proxy, std::move(p.msg)), KernReturn::kSuccess);
  ExpectOolDelivered(host_b_.get(), task_b, on_b.receive, p.expected);

  EXPECT_EQ(link.reorders_seen(), 1u);
  EXPECT_EQ(link.fragments_retransmitted(), 1u);
  EXPECT_EQ(link.duplicates_suppressed(), 1u);  // The straggler's retry.
  EXPECT_EQ(link.messages_lost(), 0u);
  task_a.reset();
  task_b.reset();
}

TEST_F(NetTest, LostSackRetransmitsWindowIdempotently) {
  // All four fragments arrive but the SACK is dropped: the sender must
  // resend the whole window, the receiver suppresses all four duplicates,
  // and the second SACK (covering everything) completes the message. The
  // message is delivered exactly once.
  FaultInjector inj(13);
  inj.SetSchedule(NetLink::kFaultAckDrop, {0});
  NetFaultConfig faults;
  faults.injector = &inj;
  faults.reliable = true;
  NetLink link(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  std::shared_ptr<Task> task_a = host_a_->CreateTask();
  std::shared_ptr<Task> task_b = host_b_->CreateTask();
  PortPair on_b = PortAllocate("ackloss-sink");
  SendRight proxy = link.ProxyForA(on_b.send);

  OolPayload p = MakeOolPayload(host_a_.get(), task_a, 4);
  ASSERT_EQ(MsgSend(proxy, std::move(p.msg)), KernReturn::kSuccess);
  ExpectOolDelivered(host_b_.get(), task_b, on_b.receive, p.expected);
  EXPECT_FALSE(MsgReceive(on_b.receive, std::chrono::milliseconds(200)).ok());

  EXPECT_EQ(link.fragments_sent(), 8u);
  EXPECT_EQ(link.fragments_retransmitted(), 4u);
  EXPECT_EQ(link.duplicates_suppressed(), 4u);
  EXPECT_EQ(link.sacks_sent(), 2u);
  EXPECT_EQ(link.retransmits(), 1u);
  EXPECT_EQ(link.messages_lost(), 0u);
  task_a.reset();
  task_b.reset();
}

TEST_F(NetTest, TerminalLossIsCountedExactlyOnce) {
  // A multi-fragment reliable message that exhausts its budget during a
  // partition is one lost message — not one per dropped fragment — while
  // messages_dropped still counts every attempt that died on the wire.
  NetFaultConfig faults;
  faults.reliable = true;
  faults.max_retransmits = 2;
  NetLink plink(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  PortPair on_b = PortAllocate("budget-sink");
  SendRight proxy = plink.ProxyForA(on_b.send);
  plink.SetPartitioned(true);

  Message msg(7);
  std::string blob(4 * kPage, 'q');  // 4 fragments.
  msg.PushData(blob.data(), blob.size());
  ASSERT_EQ(MsgSend(proxy, std::move(msg)), KernReturn::kSuccess);
  EXPECT_FALSE(MsgReceive(on_b.receive, std::chrono::milliseconds(300)).ok());

  EXPECT_EQ(plink.messages_lost(), 1u);  // Exactly once.
  EXPECT_EQ(plink.retransmits(), 2u);    // The full budget.
  // (1 + max_retransmits) passes x 4 fragments, every one dropped.
  EXPECT_EQ(plink.messages_dropped(), 12u);
  EXPECT_EQ(plink.sacks_sent(), 0u);

  // Healing does not resurrect the lost message, and later traffic does not
  // re-count it.
  plink.SetPartitioned(false);
  ASSERT_EQ(MsgSend(proxy, Message(8)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 8u);
  EXPECT_EQ(plink.messages_lost(), 1u);
}

TEST_F(NetTest, RandomizedFragmentFaultsDeliverByteForByte) {
  // Property check: under randomized fragment drops, ack drops, reorders,
  // whole-frame drops and duplicates, every reliable message that the link
  // reports delivered matches the sent bytes exactly — and with a generous
  // retransmit budget, none are lost.
  uint64_t total_retransmitted = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FaultInjector inj(seed);
    inj.SetProbability(NetLink::kFaultFragDrop, 0.20);
    inj.SetProbability(NetLink::kFaultAckDrop, 0.15);
    inj.SetProbability(NetLink::kFaultReorder, 0.10);
    inj.SetProbability(NetLink::kFaultDrop, 0.05);
    inj.SetProbability(NetLink::kFaultDuplicate, 0.05);
    NetFaultConfig faults;
    faults.injector = &inj;
    faults.reliable = true;
    faults.max_retransmits = 10;
    faults.window_fragments = 4;
    NetLink link(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
    PortPair on_b = PortAllocate("prop-sink");
    SendRight proxy = link.ProxyForA(on_b.send);

    std::mt19937_64 rng(seed * 7919);
    for (int i = 0; i < 6; ++i) {
      std::vector<std::byte> payload(1 + rng() % (5 * kPage));
      for (std::byte& b : payload) {
        b = static_cast<std::byte>(rng());
      }
      const std::vector<std::byte> oracle = payload;
      Message msg(100 + i);
      msg.PushBytes(std::move(payload));
      ASSERT_EQ(MsgSend(proxy, std::move(msg)), KernReturn::kSuccess);
      Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(10));
      ASSERT_TRUE(got.ok()) << "seed " << seed << " message " << i;
      EXPECT_EQ(got.value().id(), 100u + i);
      Result<std::vector<std::byte>> bytes = got.value().TakeBytes();
      ASSERT_TRUE(bytes.ok());
      EXPECT_EQ(bytes.value(), oracle) << "seed " << seed << " message " << i;
    }
    EXPECT_EQ(link.messages_lost(), 0u) << "seed " << seed;
    total_retransmitted += link.fragments_retransmitted();
  }
  // The fault rates are high enough that the sweep must have exercised the
  // selective-repeat path.
  EXPECT_GT(total_retransmitted, 0u);
}

// --- Failure detector -------------------------------------------------------

TEST_F(NetTest, FailureDetectorDegradesThenDeclaresPeerDead) {
  NetFaultConfig faults;
  faults.reliable = true;
  faults.failure_detector = true;
  faults.max_retransmits = 1;
  faults.retransmit_base_ns = 1000;  // Keep virtual backoff cheap.
  faults.degraded_after_timeouts = 1;
  faults.dead_after_timeouts = 4;
  NetLink link(&host_a_->vm(), &host_b_->vm(), &clock_, kUmaLatency, faults);
  PortPair on_b = PortAllocate("detector-sink");
  SendRight proxy = link.ProxyForA(on_b.send);
  ASSERT_EQ(link.a_to_b_status().health, LinkHealth::kUp);

  // A partition plus one message burns the retransmit budget: two timeout
  // rounds, enough to degrade but not to declare death.
  link.SetPartitioned(true);
  ASSERT_EQ(MsgSend(proxy, Message(1)), KernReturn::kSuccess);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (link.a_to_b_status().health == LinkHealth::kUp &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_NE(link.a_to_b_status().health, LinkHealth::kUp);

  // Heartbeats keep probing the dead link; the peer is declared dead and
  // the proxy is killed, so senders see port death instead of hanging.
  while (link.a_to_b_status().health != LinkHealth::kPeerDead &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(link.a_to_b_status().health, LinkHealth::kPeerDead);
  EXPECT_GE(link.peer_dead_events(), 1u);
  EXPECT_EQ(MsgSend(proxy, Message(2), kPoll), KernReturn::kPortDead);

  // Healing: the next successful heartbeat re-enters kUp, and a fresh proxy
  // for the same target carries traffic again.
  link.SetPartitioned(false);
  while ((link.a_to_b_status().health != LinkHealth::kUp ||
          link.b_to_a_status().health != LinkHealth::kUp) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(link.a_to_b_status().health, LinkHealth::kUp);
  SendRight fresh = link.ProxyForA(on_b.send);
  ASSERT_TRUE(fresh.valid());
  EXPECT_NE(fresh.id(), proxy.id());
  ASSERT_EQ(MsgSend(fresh, Message(3)), KernReturn::kSuccess);
  Result<Message> got = MsgReceive(on_b.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 3u);
  // Successful traffic seeded the RTT estimator.
  EXPECT_GE(link.a_to_b_status().rto_ns, faults.min_rto_ns);
  EXPECT_GE(link.heartbeats_sent(), 4u);
}

// A data manager that never answers: any fault against its objects parks
// until the pager (or the link carrying it) dies.
class StallingPager : public DataManager {
 public:
  StallingPager() : DataManager("stalling") {}
  SendRight NewObject() { return CreateMemoryObject(7); }

 protected:
  void OnDataRequest(uint64_t, uint64_t, PagerDataRequestArgs) override {}
};

TEST_F(NetTest, PeerDeathResolvesParkedRemoteFaulterQuickly) {
  // End-to-end crash recovery: a task on a zero-fill host faults against a
  // remote pager through a partitioned link. The failure detector declares
  // the peer dead and kills the proxy, whose death notification lets the
  // kernel resolve the parked faulter immediately — far inside the 5 s
  // pager timeout it would otherwise burn.
  Kernel::Config config;
  config.frames = 96;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.name = "B-zerofill";
  config.vm.on_pager_timeout = VmSystem::Config::OnPagerTimeout::kZeroFill;
  auto zf_host = std::make_unique<Kernel>(config);

  StallingPager pager;
  pager.Start();
  SendRight object = pager.NewObject();

  NetFaultConfig faults;
  faults.reliable = true;
  faults.failure_detector = true;
  faults.max_retransmits = 1;
  faults.retransmit_base_ns = 1000;
  faults.degraded_after_timeouts = 1;
  faults.dead_after_timeouts = 3;
  NetLink link(&host_a_->vm(), &zf_host->vm(), &clock_, kUmaLatency, faults);
  SendRight exported = link.ProxyForB(object);  // Usable on the zero-fill host.

  std::shared_ptr<Task> task = zf_host->CreateTask();
  Result<VmOffset> addr = task->VmAllocateWithPager(kPage, exported, 0);
  ASSERT_TRUE(addr.ok());

  link.SetPartitioned(true);
  const auto started = std::chrono::steady_clock::now();
  uint64_t out = 0xFFFF'FFFF'FFFF'FFFFull;
  KernReturn kr = task->Read(addr.value(), &out, sizeof(out));
  const auto elapsed = std::chrono::steady_clock::now() - started;

  EXPECT_EQ(kr, KernReturn::kSuccess);
  EXPECT_EQ(out, 0u);  // Zero-fill policy.
  EXPECT_LT(elapsed, std::chrono::seconds(2));  // Not the 5 s pager timeout.
  EXPECT_GE(link.peer_dead_events(), 1u);
  EXPECT_TRUE(exported.IsDead());
  EXPECT_GE(zf_host->vm().Statistics().manager_deaths, 1u);

  task.reset();
  pager.Stop();
}

}  // namespace
}  // namespace mach
