// Tests for the kernel layer: task and thread lifecycle (§3.1), the task's
// default port group (Table 3-2), user code running on threads against task
// memory, and multi-threaded fault handling.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() {
    Kernel::Config config;
    config.frames = 128;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    kernel_ = std::make_unique<Kernel>(config);
  }

  std::unique_ptr<Kernel> kernel_;
};

TEST_F(KernelTest, BootAndShutdown) {
  EXPECT_EQ(kernel_->page_size(), kPage);
  EXPECT_GT(kernel_->phys().free_frames(), 0u);
}

TEST_F(KernelTest, CreateTaskHasPortAndEmptyMap) {
  std::shared_ptr<Task> task = kernel_->CreateTask(nullptr, "t1");
  EXPECT_TRUE(task->task_port().valid());
  EXPECT_TRUE(task->VmRegions().empty());
  EXPECT_EQ(task->name(), "t1");
}

TEST_F(KernelTest, TasksHaveIndependentAddressSpaces) {
  std::shared_ptr<Task> a = kernel_->CreateTask();
  std::shared_ptr<Task> b = kernel_->CreateTask();
  VmOffset addr_a = a->VmAllocate(kPage, false, 0x30000).value();
  uint32_t v = 5;
  ASSERT_EQ(a->Write(addr_a, &v, sizeof(v)), KernReturn::kSuccess);
  uint32_t out;
  // Same address in b is invalid: separate maps.
  EXPECT_EQ(b->Read(0x30000, &out, sizeof(out)), KernReturn::kInvalidAddress);
}

TEST_F(KernelTest, TaskDestructionReleasesFrames) {
  uint32_t free_before = kernel_->phys().free_frames();
  {
    std::shared_ptr<Task> task = kernel_->CreateTask();
    VmOffset addr = task->VmAllocate(16 * kPage).value();
    std::vector<uint8_t> junk(16 * kPage, 1);
    ASSERT_EQ(task->Write(addr, junk.data(), junk.size()), KernReturn::kSuccess);
    EXPECT_LT(kernel_->phys().free_frames(), free_before);
  }
  // Anonymous objects die with the task; their frames return.
  EXPECT_EQ(kernel_->phys().free_frames(), free_before);
}

TEST_F(KernelTest, ThreadRunsUserCodeAgainstTaskMemory) {
  std::shared_ptr<Task> task = kernel_->CreateTask();
  VmOffset addr = task->VmAllocate(kPage).value();
  std::shared_ptr<Thread> thread = task->SpawnThread([addr](Thread& self) {
    uint32_t v = 999;
    self.task().Write(addr, &v, sizeof(v));
  });
  thread->Join();
  uint32_t out = 0;
  ASSERT_EQ(task->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 999u);
}

TEST_F(KernelTest, ThreadsShareTaskAddressSpace) {
  // "All threads within a task share the address space ... of that task"
  // (§3.1).
  std::shared_ptr<Task> task = kernel_->CreateTask();
  VmOffset addr = task->VmAllocate(kPage).value();
  Event ready;
  std::shared_ptr<Thread> writer = task->SpawnThread([&](Thread& self) {
    uint32_t v = 7;
    self.task().Write(addr, &v, sizeof(v));
    ready.Signal();
  });
  std::atomic<uint32_t> seen{0};
  std::shared_ptr<Thread> reader = task->SpawnThread([&](Thread& self) {
    ready.Wait();
    uint32_t v = 0;
    self.task().Read(addr, &v, sizeof(v));
    seen = v;
  });
  writer->Join();
  reader->Join();
  EXPECT_EQ(seen.load(), 7u);
}

TEST_F(KernelTest, ManyThreadsFaultConcurrently) {
  std::shared_ptr<Task> task = kernel_->CreateTask();
  constexpr int kThreads = 8;
  constexpr VmSize kPagesPer = 8;
  VmOffset addr = task->VmAllocate(kThreads * kPagesPer * kPage).value();
  std::vector<std::shared_ptr<Thread>> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(task->SpawnThread([&, t](Thread& self) {
      VmOffset base = addr + t * kPagesPer * kPage;
      for (VmOffset p = 0; p < kPagesPer; ++p) {
        uint64_t v = (uint64_t{static_cast<uint64_t>(t)} << 32) | p;
        if (!IsOk(self.task().Write(base + p * kPage, &v, sizeof(v)))) {
          failures.fetch_add(1);
        }
      }
    }));
  }
  for (auto& t : threads) {
    t->Join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    for (VmOffset p = 0; p < kPagesPer; ++p) {
      uint64_t out = 0;
      ASSERT_EQ(task->Read(addr + (t * kPagesPer + p) * kPage, &out, sizeof(out)),
                KernReturn::kSuccess);
      EXPECT_EQ(out, (uint64_t{static_cast<uint64_t>(t)} << 32) | p);
    }
  }
}

TEST_F(KernelTest, ConcurrentFaultsOnSamePage) {
  // Several threads fault the same non-resident page at once: one
  // pager_data_request, everyone proceeds (busy-page waiting).
  std::shared_ptr<Task> task = kernel_->CreateTask();
  VmOffset addr = task->VmAllocate(kPage).value();
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<Thread>> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(task->SpawnThread([&](Thread& self) {
      uint32_t v = 0;
      if (IsOk(self.task().Read(addr, &v, sizeof(v))) && v == 0) {
        ok.fetch_add(1);
      }
    }));
  }
  for (auto& t : threads) {
    t->Join();
  }
  EXPECT_EQ(ok.load(), kThreads);
}

TEST_F(KernelTest, ThreadSuspendResume) {
  std::shared_ptr<Task> task = kernel_->CreateTask();
  std::atomic<int> progress{0};
  std::shared_ptr<Thread> thread = task->SpawnThread([&](Thread& self) {
    while (self.Checkpoint()) {
      progress.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Let it run, then suspend.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  thread->Suspend();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int frozen = progress.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(progress.load(), frozen + 1);  // At most one in-flight iteration.
  thread->Resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GT(progress.load(), frozen);
  thread->Terminate();
  thread->Join();
  EXPECT_TRUE(thread->finished());
}

TEST_F(KernelTest, TaskSuspendPausesAllThreads) {
  std::shared_ptr<Task> task = kernel_->CreateTask();
  std::atomic<int> progress{0};
  std::vector<std::shared_ptr<Thread>> threads;
  for (int i = 0; i < 3; ++i) {
    threads.push_back(task->SpawnThread([&](Thread& self) {
      while (self.Checkpoint()) {
        progress.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  task->Suspend();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int frozen = progress.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(progress.load(), frozen + 3);
  task->Resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GT(progress.load(), frozen);
  for (auto& t : threads) {
    t->Terminate();
    t->Join();
  }
}

TEST_F(KernelTest, TaskDefaultPortGroup) {
  // port_enable / port_disable / msg_receive on the default group
  // (Table 3-2).
  std::shared_ptr<Task> task = kernel_->CreateTask();
  PortPair a = task->PortAllocate("a");
  PortPair b = task->PortAllocate("b");
  ASSERT_EQ(task->PortEnable(a.receive), KernReturn::kSuccess);
  ASSERT_EQ(task->PortEnable(b.receive), KernReturn::kSuccess);
  MsgSend(b.send, Message(42));
  Result<Message> got = task->ReceiveAny(std::chrono::milliseconds(1000));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().id(), 42u);
  // port_messages reports queued ports.
  MsgSend(a.send, Message(1));
  std::vector<uint64_t> ids = task->PortsWithMessages();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], a.send.id());
  // Disable removes from the group.
  ASSERT_EQ(task->PortDisable(a.receive), KernReturn::kSuccess);
  EXPECT_EQ(task->ReceiveAny(kPoll).status(), KernReturn::kNoMessage);
}

TEST_F(KernelTest, RpcBetweenTasks) {
  // A server task answering a client task via msg_rpc, the §3.2 model.
  std::shared_ptr<Task> server = kernel_->CreateTask(nullptr, "server");
  std::shared_ptr<Task> client = kernel_->CreateTask(nullptr, "client");
  PortPair service = server->PortAllocate("service");
  server->PortEnable(service.receive);

  std::shared_ptr<Thread> service_thread = server->SpawnThread([&](Thread& self) {
    Result<Message> req = self.task().ReceiveAny(std::chrono::seconds(5));
    if (!req.ok()) {
      return;
    }
    uint32_t x = req.value().TakeU32().value_or(0);
    Message reply(100);
    reply.PushU32(x + 1);
    MsgSend(req.value().reply_port(), std::move(reply));
  });

  Message request(1);
  request.PushU32(41);
  Result<Message> reply = MsgRpc(service.send, std::move(request), kWaitForever,
                                 std::chrono::seconds(5));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().TakeU32().value(), 42u);
  service_thread->Join();
  (void)client;
}

TEST_F(KernelTest, ForkedChildRunsIndependently) {
  std::shared_ptr<Task> parent = kernel_->CreateTask(nullptr, "parent");
  VmOffset addr = parent->VmAllocate(kPage).value();
  uint32_t v = 10;
  ASSERT_EQ(parent->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  std::shared_ptr<Task> child = kernel_->CreateTask(parent, "child");
  std::shared_ptr<Thread> worker = child->SpawnThread([addr](Thread& self) {
    uint32_t x = 0;
    self.task().Read(addr, &x, sizeof(x));
    x *= 3;
    self.task().Write(addr, &x, sizeof(x));
  });
  worker->Join();
  uint32_t parent_view = 0, child_view = 0;
  ASSERT_EQ(parent->Read(addr, &parent_view, sizeof(parent_view)), KernReturn::kSuccess);
  ASSERT_EQ(child->Read(addr, &child_view, sizeof(child_view)), KernReturn::kSuccess);
  EXPECT_EQ(parent_view, 10u);  // Copy inheritance: parent unchanged.
  EXPECT_EQ(child_view, 30u);
}

TEST_F(KernelTest, OolMessageBetweenTasksCarriesMemory) {
  // The duality in one test: a message moves a large region between tasks
  // by mapping, and the result is copy-on-write in the receiver.
  std::shared_ptr<Task> sender = kernel_->CreateTask();
  std::shared_ptr<Task> receiver = kernel_->CreateTask();
  VmOffset src = sender->VmAllocate(8 * kPage).value();
  std::vector<uint8_t> payload(8 * kPage);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_EQ(sender->Write(src, payload.data(), payload.size()), KernReturn::kSuccess);

  PortPair channel = PortAllocate("channel");
  auto copy = kernel_->vm().CopyIn(sender->vm_context(), src, 8 * kPage);
  ASSERT_TRUE(copy.ok());
  Message msg(7);
  msg.PushOol(copy.value(), 8 * kPage);
  ASSERT_EQ(MsgSend(channel.send, std::move(msg)), KernReturn::kSuccess);

  Result<Message> got = MsgReceive(channel.receive, std::chrono::seconds(5));
  ASSERT_TRUE(got.ok());
  Result<OolItem> ool = got.value().TakeOol();
  ASSERT_TRUE(ool.ok());
  auto received_copy = std::static_pointer_cast<VmMapCopy>(ool.value().copy);
  Result<VmOffset> dst = kernel_->vm().CopyOut(receiver->vm_context(), received_copy);
  ASSERT_TRUE(dst.ok());

  std::vector<uint8_t> out(8 * kPage);
  ASSERT_EQ(receiver->Read(dst.value(), out.data(), out.size()), KernReturn::kSuccess);
  EXPECT_EQ(out, payload);
}

}  // namespace
}  // namespace mach
