// Property/stress tests for the counted-send-right machinery: a seeded
// random workload (port allocations, right transfers through messages,
// queue drops, port and task deaths) runs against a reference-counting
// oracle that independently tracks every live send right — including the
// copies riding inside queued messages — and every expected no-senders
// notification. After teardown, PortGc must bring the live-port count back
// to the baseline: rights trapped in cross-port queue cycles count as
// garbage, not leaks.
//
// A second suite runs the same shape of workload with the ipc.* fault
// points armed (spurious queue overflows, duplicated/dropped rights in
// transit, delayed notifications). Counts are then intentionally perturbed,
// so the only invariant checked is the one that must survive anything:
// after disarming (which drains deferred notifications) and a final
// Collect, no port outlives its last reference.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <random>
#include <utility>
#include <variant>
#include <vector>

#include "src/base/fault_injector.h"
#include "src/ipc/ipc_faults.h"
#include "src/ipc/message.h"
#include "src/ipc/port.h"
#include "src/ipc/port_gc.h"

namespace mach {
namespace {

constexpr int kNumTasks = 4;
constexpr int kOpsPerSeed = 1500;
constexpr size_t kMaxPorts = 64;

// Model of one in-flight message: ids of the rights it carries, in push
// order (send rights first, then receive rights — mirroring both the push
// order used below and the forward destruction order of Message's items).
struct MsgModel {
  std::vector<uint64_t> send_ids;
  std::vector<uint64_t> recv_ids;
};

struct PortModel {
  uint64_t count = 0;  // Live send rights (tasks + queues).
  bool alive = true;
  bool armed = false;  // Outstanding no-senders registration.
  std::deque<MsgModel> queue;
};

class IpcPropertyTest : public ::testing::TestWithParam<uint64_t> {};
class IpcFaultStressTest : public ::testing::TestWithParam<uint64_t> {};

// The oracle workload. Everything is single-threaded, so real notification
// delivery (which happens synchronously inside right destruction) is
// deterministic and can be counted exactly.
class OracleWorld {
 public:
  explicit OracleWorld(uint64_t seed) : rng_(seed) {
    notify_ = PortAllocate("prop-notify");
    // Notifications must never be lost to a full notify queue, or the
    // expected count diverges.
    notify_.receive.port()->SetBacklog(4096);
  }

  void RunOps() {
    for (int op = 0; op < kOpsPerSeed; ++op) {
      switch (PickOp()) {
        case Op::kAlloc: DoAlloc(); break;
        case Op::kCopy: DoCopy(); break;
        case Op::kDrop: DoDrop(); break;
        case Op::kArm: DoArm(); break;
        case Op::kSend: DoSend(); break;
        case Op::kReceive: DoReceive(); break;
        case Op::kKillPort: DoKillPort(); break;
        case Op::kKillTask: DoKillTask(); break;
        case Op::kMint: DoMint(); break;
      }
      if (op % 50 == 49) {
        CheckCounts();
      }
    }
    CheckCounts();
  }

  // Destroys every task-held right and every directly held receive right,
  // keeping the model in lockstep, then verifies the notification oracle.
  // Ports whose receive rights are trapped in queue cycles stay alive here;
  // the caller reclaims them with PortGcCollect().
  void Teardown() {
    for (auto& task : tasks_) {
      for (SendRight& r : task) {
        uint64_t id = r.id();
        r = SendRight();
        ModelDecRef(id);
      }
      task.clear();
    }
    while (!receives_.empty()) {
      uint64_t id = receives_.begin()->first;
      receives_.erase(receives_.begin());  // ~ReceiveRight marks the port dead.
      ModelKill(id);
    }
    CheckCounts();

    // Every modeled zero transition of an armed, alive port must have
    // produced exactly one kMsgIdNoSenders on the notify port.
    uint64_t delivered = 0;
    while (true) {
      Result<Message> got = MsgReceive(notify_.receive, kPoll);
      if (!got.ok()) {
        break;
      }
      if (got.value().id() == kMsgIdNoSenders) {
        ++delivered;
      }
    }
    EXPECT_EQ(delivered, expected_notifications_);
    notify_ = PortPair();
  }

 private:
  enum class Op { kAlloc, kCopy, kDrop, kArm, kSend, kReceive, kKillPort, kKillTask, kMint };

  Op PickOp() {
    // Weighted distribution over the op mix.
    static constexpr std::pair<Op, int> kWeights[] = {
        {Op::kAlloc, 12}, {Op::kCopy, 15},     {Op::kDrop, 15},
        {Op::kArm, 7},    {Op::kSend, 20},     {Op::kReceive, 15},
        {Op::kKillPort, 6}, {Op::kKillTask, 4}, {Op::kMint, 6},
    };
    int total = 0;
    for (const auto& [op, w] : kWeights) {
      total += w;
    }
    int pick = static_cast<int>(rng_() % total);
    for (const auto& [op, w] : kWeights) {
      if (pick < w) {
        return op;
      }
      pick -= w;
    }
    return Op::kAlloc;
  }

  size_t Rand(size_t n) { return static_cast<size_t>(rng_() % n); }

  // --- model bookkeeping -------------------------------------------------

  void ModelDecRef(uint64_t id) {
    PortModel& m = model_.at(id);
    ASSERT_GT(m.count, 0u) << "model underflow for port " << id;
    if (--m.count == 0 && m.alive && m.armed) {
      m.armed = false;  // One-shot.
      ++expected_notifications_;
    }
  }

  // Mirrors port death: the queue is destroyed front to back, each
  // message's send rights before its receive rights (vector order), and a
  // destroyed in-transit receive right kills its port depth-first — the
  // same cascade MarkDead produces.
  void ModelKill(uint64_t id) {
    PortModel& m = model_.at(id);
    if (!m.alive) {
      return;
    }
    m.alive = false;
    m.armed = false;  // Death supersedes no-senders.
    std::deque<MsgModel> doomed;
    doomed.swap(m.queue);
    for (MsgModel& msg : doomed) {
      ModelDestroyMessage(msg);
    }
  }

  void ModelDestroyMessage(const MsgModel& msg) {
    for (uint64_t sid : msg.send_ids) {
      ModelDecRef(sid);
    }
    for (uint64_t rid : msg.recv_ids) {
      ModelKill(rid);
    }
  }

  // --- ops ---------------------------------------------------------------

  void DoAlloc() {
    if (model_.size() >= kMaxPorts) {
      return;
    }
    PortPair pair = PortAllocate("prop-port");
    uint64_t id = pair.send.id();
    ports_[id] = std::weak_ptr<Port>(pair.receive.port());
    receives_.emplace(id, std::move(pair.receive));
    model_[id] = PortModel{.count = 1};
    tasks_[Rand(kNumTasks)].push_back(std::move(pair.send));
  }

  // Returns (task, index) of a uniformly random task-held right, or false.
  bool PickRight(size_t* task, size_t* idx) {
    size_t total = 0;
    for (const auto& t : tasks_) {
      total += t.size();
    }
    if (total == 0) {
      return false;
    }
    size_t pick = Rand(total);
    for (size_t t = 0; t < tasks_.size(); ++t) {
      if (pick < tasks_[t].size()) {
        *task = t;
        *idx = pick;
        return true;
      }
      pick -= tasks_[t].size();
    }
    return false;
  }

  void DoCopy() {
    size_t t, i;
    if (!PickRight(&t, &i)) {
      return;
    }
    SendRight copy = tasks_[t][i];  // Counted copy.
    model_.at(copy.id()).count++;
    tasks_[Rand(kNumTasks)].push_back(std::move(copy));
  }

  void DoDrop() {
    size_t t, i;
    if (!PickRight(&t, &i)) {
      return;
    }
    uint64_t id = tasks_[t][i].id();
    tasks_[t][i] = std::move(tasks_[t].back());
    tasks_[t].pop_back();
    ModelDecRef(id);
  }

  void DoArm() {
    std::vector<uint64_t> alive;
    for (const auto& [id, m] : model_) {
      if (m.alive) {
        alive.push_back(id);
      }
    }
    if (alive.empty()) {
      return;
    }
    uint64_t id = alive[Rand(alive.size())];
    std::shared_ptr<Port> p = ports_.at(id).lock();
    ASSERT_NE(p, nullptr);
    p->RequestNoSendersNotification(notify_.send);
    PortModel& m = model_.at(id);
    if (m.count == 0) {
      ++expected_notifications_;  // Fires immediately, stays disarmed.
    } else {
      m.armed = true;  // Idempotent: re-arming replaces the registration.
    }
  }

  void DoSend() {
    size_t t, i;
    if (!PickRight(&t, &i)) {
      return;
    }
    uint64_t dest_id = tasks_[t][i].id();
    SendRight dest = tasks_[t][i];  // Copy so the message may carry the original.
    model_.at(dest_id).count++;

    MsgModel mm;
    Message msg(0x77);
    // Carry 0-2 send rights, pushed before any receive right so real
    // destruction order (vector-forward) matches the model's.
    size_t carries = Rand(3);
    for (size_t c = 0; c < carries; ++c) {
      size_t ct, ci;
      if (!PickRight(&ct, &ci)) {
        break;
      }
      mm.send_ids.push_back(tasks_[ct][ci].id());
      msg.PushPort(std::move(tasks_[ct][ci]));
      tasks_[ct][ci] = std::move(tasks_[ct].back());
      tasks_[ct].pop_back();
    }
    // Occasionally put a receive right in transit: this is what makes ports
    // reachable only through queues (and, with bad luck, cyclic garbage).
    if (rng_() % 100 < 20 && !receives_.empty()) {
      auto it = receives_.begin();
      std::advance(it, Rand(receives_.size()));
      mm.recv_ids.push_back(it->first);
      msg.PushReceive(std::move(it->second));
      receives_.erase(it);
    }

    KernReturn kr = MsgSend(dest, std::move(msg), kPoll);
    if (IsOk(kr)) {
      model_.at(dest_id).queue.push_back(std::move(mm));
    } else {
      // Dead destination or full queue: the message (still owned by this
      // frame) dies at scope end, destroying its rights in push order.
      ModelDestroyMessage(mm);
    }
    dest = SendRight();
    ModelDecRef(dest_id);
  }

  void DoReceive() {
    std::vector<uint64_t> ready;
    for (const auto& [id, m] : model_) {
      if (m.alive && !m.queue.empty() && receives_.count(id) != 0) {
        ready.push_back(id);
      }
    }
    if (ready.empty()) {
      return;
    }
    uint64_t id = ready[Rand(ready.size())];
    Result<Message> got = MsgReceive(receives_.at(id), kPoll);
    ASSERT_TRUE(got.ok()) << "model expected a queued message on port " << id;
    MsgModel mm = std::move(model_.at(id).queue.front());
    model_.at(id).queue.pop_front();

    Message msg = std::move(got).value();
    size_t next_send = 0, next_recv = 0;
    for (MsgItem& item : msg.items()) {
      if (auto* pi = std::get_if<PortItem>(&item)) {
        ASSERT_LT(next_send, mm.send_ids.size());
        ASSERT_EQ(pi->right.id(), mm.send_ids[next_send++]);
        tasks_[Rand(kNumTasks)].push_back(std::move(pi->right));
      } else if (auto* ri = std::get_if<ReceiveItem>(&item)) {
        ASSERT_LT(next_recv, mm.recv_ids.size());
        ASSERT_EQ(ri->right.id(), mm.recv_ids[next_recv++]);
        uint64_t rid = ri->right.id();
        receives_.emplace(rid, std::move(ri->right));
      }
    }
    ASSERT_EQ(next_send, mm.send_ids.size());
    ASSERT_EQ(next_recv, mm.recv_ids.size());
  }

  void DoKillPort() {
    if (receives_.empty()) {
      return;
    }
    auto it = receives_.begin();
    std::advance(it, Rand(receives_.size()));
    uint64_t id = it->first;
    receives_.erase(it);
    ModelKill(id);
  }

  void DoKillTask() {
    auto& task = tasks_[Rand(kNumTasks)];
    for (SendRight& r : task) {
      uint64_t id = r.id();
      r = SendRight();
      ModelDecRef(id);
    }
    task.clear();
  }

  void DoMint() {
    if (receives_.empty()) {
      return;
    }
    auto it = receives_.begin();
    std::advance(it, Rand(receives_.size()));
    // Resurrection: minting from the receive right may take the count from
    // zero back up; a prior no-senders stays fired (at-least-once protocol).
    tasks_[Rand(kNumTasks)].push_back(it->second.MakeSendRight());
    model_.at(it->first).count++;
  }

  // The oracle proper: every live port's kernel-side count must equal the
  // model's.
  void CheckCounts() {
    for (const auto& [id, m] : model_) {
      if (!m.alive) {
        continue;
      }
      // A model-alive port always has a shared owner somewhere — its receive
      // right sits in receives_ or inside some queue — so lock() succeeds.
      std::shared_ptr<Port> p = ports_.at(id).lock();
      ASSERT_NE(p, nullptr) << "port " << id;
      EXPECT_EQ(p->send_right_count(), m.count) << "port " << id;
      EXPECT_EQ(p->Status().send_rights, m.count) << "port " << id;
    }
  }

  std::mt19937_64 rng_;
  PortPair notify_;
  std::vector<std::vector<SendRight>> tasks_{kNumTasks};
  std::map<uint64_t, ReceiveRight> receives_;  // Task-held receive rights.
  // Weak, for count queries only: a shared_ptr here would be an external
  // GC root and (correctly) pin cycle garbage, defeating the leak check.
  std::map<uint64_t, std::weak_ptr<Port>> ports_;
  std::map<uint64_t, PortModel> model_;
  uint64_t expected_notifications_ = 0;
};

TEST_P(IpcPropertyTest, CountsMatchOracleAndTeardownIsLeakFree) {
  // Opportunistic GC would move notification timing around; the oracle
  // needs collection to happen only at the explicit call below.
  PortGc::Instance().SetAutoCollect(false);
  PortGcCollect();
  const size_t baseline = PortGcLivePortCount();
  {
    OracleWorld world(GetParam());
    world.RunOps();
    world.Teardown();
    // Only queue-cycle garbage (if this seed produced any) is left.
    PortGcCollect();
    EXPECT_EQ(PortGcLivePortCount(), baseline);
  }
  PortGc::Instance().SetAutoCollect(true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpcPropertyTest, ::testing::Range<uint64_t>(1, 13));

// The fault-armed stress: same traffic shape, no count oracle (the injector
// deliberately duplicates and drops rights), but teardown-to-baseline must
// survive any fault schedule.
TEST_P(IpcFaultStressTest, TeardownReachesBaselineUnderIpcFaults) {
  PortGcCollect();
  const size_t baseline = PortGcLivePortCount();

  FaultInjector injector(GetParam());
  injector.SetProbability(kIpcFaultEnqueue, 0.05);
  injector.SetProbability(kIpcFaultRightTransfer, 0.05);
  injector.SetProbability(kIpcFaultNotify, 0.25);
  SetIpcFaultInjector(&injector);

  std::mt19937_64 rng(GetParam() * 7919 + 1);
  PortPair notify = PortAllocate("stress-notify");
  notify.receive.port()->SetBacklog(4096);
  std::vector<std::vector<SendRight>> tasks(kNumTasks);
  std::map<uint64_t, ReceiveRight> receives;

  auto rand_n = [&rng](size_t n) { return static_cast<size_t>(rng() % n); };
  auto pick_right = [&](size_t* t, size_t* i) {
    size_t total = 0;
    for (const auto& task : tasks) total += task.size();
    if (total == 0) return false;
    size_t pick = rand_n(total);
    for (size_t ti = 0; ti < tasks.size(); ++ti) {
      if (pick < tasks[ti].size()) {
        *t = ti;
        *i = pick;
        return true;
      }
      pick -= tasks[ti].size();
    }
    return false;
  };

  for (int op = 0; op < kOpsPerSeed; ++op) {
    switch (rng() % 8) {
      case 0: {  // alloc
        if (receives.size() >= kMaxPorts) break;
        PortPair pair = PortAllocate("stress-port");
        pair.receive.port()->RequestNoSendersNotification(notify.send);
        uint64_t id = pair.send.id();
        receives.emplace(id, std::move(pair.receive));
        tasks[rand_n(kNumTasks)].push_back(std::move(pair.send));
        break;
      }
      case 1: {  // copy
        size_t t, i;
        if (!pick_right(&t, &i)) break;
        tasks[rand_n(kNumTasks)].push_back(tasks[t][i]);
        break;
      }
      case 2: {  // drop
        size_t t, i;
        if (!pick_right(&t, &i)) break;
        tasks[t][i] = std::move(tasks[t].back());
        tasks[t].pop_back();
        break;
      }
      case 3:
      case 4: {  // send, possibly carrying rights (and sometimes a receive)
        size_t t, i;
        if (!pick_right(&t, &i)) break;
        SendRight dest = tasks[t][i];
        Message msg(0x88);
        for (size_t c = rand_n(3); c > 0; --c) {
          size_t ct, ci;
          if (!pick_right(&ct, &ci)) break;
          msg.PushPort(std::move(tasks[ct][ci]));
          tasks[ct][ci] = std::move(tasks[ct].back());
          tasks[ct].pop_back();
        }
        if (rng() % 100 < 20 && !receives.empty()) {
          auto it = receives.begin();
          std::advance(it, rand_n(receives.size()));
          msg.PushReceive(std::move(it->second));
          receives.erase(it);
        }
        MsgSend(dest, std::move(msg), kPoll);  // Failure destroys the rights.
        break;
      }
      case 5: {  // receive from a random held port, re-homing any rights
        if (receives.empty()) break;
        auto it = receives.begin();
        std::advance(it, rand_n(receives.size()));
        Result<Message> got = MsgReceive(it->second, kPoll);
        if (!got.ok()) break;
        Message msg = std::move(got).value();
        for (MsgItem& item : msg.items()) {
          if (auto* pi = std::get_if<PortItem>(&item)) {
            if (pi->right.valid()) {
              tasks[rand_n(kNumTasks)].push_back(std::move(pi->right));
            }
          } else if (auto* ri = std::get_if<ReceiveItem>(&item)) {
            // ipc.right_transfer may have dropped this right in transit.
            if (ri->right.valid()) {
              uint64_t rid = ri->right.id();
              receives.emplace(rid, std::move(ri->right));
            }
          }
        }
        break;
      }
      case 6: {  // kill port
        if (receives.empty()) break;
        auto it = receives.begin();
        std::advance(it, rand_n(receives.size()));
        receives.erase(it);
        break;
      }
      case 7: {  // kill task
        tasks[rand_n(kNumTasks)].clear();
        break;
      }
    }
    if (op % 100 == 99) {
      IpcDrainDelayedNotifications();
    }
  }

  // The schedule must actually have exercised every point.
  EXPECT_GT(injector.Evaluations(kIpcFaultEnqueue), 0u);
  EXPECT_GT(injector.Evaluations(kIpcFaultRightTransfer), 0u);
  EXPECT_GT(injector.Evaluations(kIpcFaultNotify), 0u);

  for (auto& task : tasks) {
    task.clear();
  }
  receives.clear();
  SetIpcFaultInjector(nullptr);  // Drains anything still deferred.
  EXPECT_EQ(IpcPendingDelayedNotificationCount(), 0u);
  notify = PortPair();
  PortGcCollect();
  EXPECT_EQ(PortGcLivePortCount(), baseline);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpcFaultStressTest, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace mach
