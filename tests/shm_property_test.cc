// Parameterized property tests for the §4.2 coherence protocol: randomized
// write sequences from alternating hosts must always converge to the last
// written value on every host (single-writer serialisation), across seeds
// and host counts.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/shm/shm_server.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

struct HostContext {
  std::unique_ptr<Kernel> kernel;
  std::shared_ptr<Task> task;
  VmOffset base = 0;
};

class ShmPropertyTest : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {
 protected:
  static constexpr VmSize kPages = 6;

  void SetUp() override {
    server_ = std::make_unique<SharedMemoryServer>(kPage);
    server_->Start();
    SendRight region = server_->GetRegion("prop", kPages * kPage);
    const int hosts = std::get<0>(GetParam());
    for (int h = 0; h < hosts; ++h) {
      HostContext ctx;
      Kernel::Config config;
      config.name = "host" + std::to_string(h);
      config.frames = 96;
      config.page_size = kPage;
      config.disk_latency = DiskLatencyModel{0, 0};
      ctx.kernel = std::make_unique<Kernel>(config);
      ctx.task = ctx.kernel->CreateTask();
      ctx.base = ctx.task->VmAllocateWithPager(kPages * kPage, region, 0).value();
      hosts_.push_back(std::move(ctx));
    }
  }

  void TearDown() override {
    for (auto& ctx : hosts_) {
      ctx.task.reset();
    }
    server_->Stop();
    hosts_.clear();
  }

  // Reads `page` on host `h`, polling until it equals `expect` or a budget
  // elapses; returns the final value seen.
  uint64_t PollRead(int h, VmOffset page, uint64_t expect) {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    uint64_t v = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      v = hosts_[h].task->ReadValue<uint64_t>(hosts_[h].base + page * kPage).value_or(~0ull);
      if (v == expect) {
        return v;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return v;
  }

  std::unique_ptr<SharedMemoryServer> server_;
  std::vector<HostContext> hosts_;
};

TEST_P(ShmPropertyTest, LastWriteWinsEverywhere) {
  const int hosts = std::get<0>(GetParam());
  std::mt19937 rng(std::get<1>(GetParam()));
  std::vector<uint64_t> model(kPages, 0);
  for (int step = 0; step < 40; ++step) {
    int writer = static_cast<int>(rng() % hosts);
    VmOffset page = rng() % kPages;
    uint64_t value = (static_cast<uint64_t>(step + 1) << 32) | rng();
    ASSERT_EQ(hosts_[writer].task->WriteValue<uint64_t>(hosts_[writer].base + page * kPage,
                                                        value),
              KernReturn::kSuccess)
        << "step " << step;
    model[page] = value;
    // Every few steps, verify convergence on every host.
    if (step % 8 == 7) {
      for (int h = 0; h < hosts; ++h) {
        for (VmOffset p = 0; p < kPages; ++p) {
          ASSERT_EQ(PollRead(h, p, model[p]), model[p])
              << "host " << h << " page " << p << " step " << step;
        }
      }
    }
  }
  // Final convergence.
  for (int h = 0; h < hosts; ++h) {
    for (VmOffset p = 0; p < kPages; ++p) {
      ASSERT_EQ(PollRead(h, p, model[p]), model[p]) << "host " << h << " page " << p;
    }
  }
}

TEST_P(ShmPropertyTest, ReadersNeverSeeTornOrForeignValues) {
  // Writers only ever store values from a recognisable set; readers on all
  // hosts must never observe anything outside {0} ∪ written-values.
  const int hosts = std::get<0>(GetParam());
  std::mt19937 rng(std::get<1>(GetParam()) ^ 0x5eed);
  std::vector<std::vector<uint64_t>> written(kPages);
  for (VmOffset p = 0; p < kPages; ++p) {
    written[p].push_back(0);
  }
  for (int step = 0; step < 30; ++step) {
    int writer = static_cast<int>(rng() % hosts);
    VmOffset page = rng() % kPages;
    uint64_t value = 0xF00D000000000000ull | (static_cast<uint64_t>(step) << 16) | page;
    ASSERT_EQ(hosts_[writer].task->WriteValue<uint64_t>(hosts_[writer].base + page * kPage,
                                                        value),
              KernReturn::kSuccess);
    written[page].push_back(value);
    // A random other host reads the page; whatever it sees must be some
    // previously written value for that page (coherence may lag, but can
    // never invent data).
    int reader = static_cast<int>(rng() % hosts);
    Result<uint64_t> seen =
        hosts_[reader].task->ReadValue<uint64_t>(hosts_[reader].base + page * kPage);
    ASSERT_TRUE(seen.ok());
    bool known = false;
    for (uint64_t w : written[page]) {
      known |= (w == seen.value());
    }
    ASSERT_TRUE(known) << "host " << reader << " saw unwritten value " << std::hex
                       << seen.value() << " on page " << page;
  }
}

INSTANTIATE_TEST_SUITE_P(
    HostsAndSeeds, ShmPropertyTest,
    ::testing::Combine(::testing::Values(2, 3), ::testing::Values(11u, 2026u)),
    [](const ::testing::TestParamInfo<ShmPropertyTest::ParamType>& info) {
      return "hosts" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mach
