// Parameterized property tests for the §4.2 coherence protocol: randomized
// write sequences from alternating hosts must always converge to the last
// written value on every host (single-writer serialisation), across seeds
// and host counts.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "src/base/fault_injector.h"
#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/shm/shm_broker.h"
#include "src/managers/shm/shm_server.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

struct HostContext {
  std::unique_ptr<Kernel> kernel;
  std::shared_ptr<Task> task;
  VmOffset base = 0;
};

class ShmPropertyTest : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {
 protected:
  static constexpr VmSize kPages = 6;

  void SetUp() override {
    server_ = std::make_unique<SharedMemoryServer>(kPage);
    server_->Start();
    SendRight region = server_->GetRegion("prop", kPages * kPage);
    const int hosts = std::get<0>(GetParam());
    for (int h = 0; h < hosts; ++h) {
      HostContext ctx;
      Kernel::Config config;
      config.name = "host" + std::to_string(h);
      config.frames = 96;
      config.page_size = kPage;
      config.disk_latency = DiskLatencyModel{0, 0};
      ctx.kernel = std::make_unique<Kernel>(config);
      ctx.task = ctx.kernel->CreateTask();
      ctx.base = ctx.task->VmAllocateWithPager(kPages * kPage, region, 0).value();
      hosts_.push_back(std::move(ctx));
    }
  }

  void TearDown() override {
    for (auto& ctx : hosts_) {
      ctx.task.reset();
    }
    server_->Stop();
    hosts_.clear();
  }

  // Reads `page` on host `h`, polling until it equals `expect` or a budget
  // elapses; returns the final value seen.
  uint64_t PollRead(int h, VmOffset page, uint64_t expect) {
    // Generous: polls return on success, and under an oversubscribed
    // sanitizer run 5 wall seconds can hold very little actual progress.
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    uint64_t v = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      v = hosts_[h].task->ReadValue<uint64_t>(hosts_[h].base + page * kPage).value_or(~0ull);
      if (v == expect) {
        return v;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return v;
  }

  std::unique_ptr<SharedMemoryServer> server_;
  std::vector<HostContext> hosts_;
};

TEST_P(ShmPropertyTest, LastWriteWinsEverywhere) {
  const int hosts = std::get<0>(GetParam());
  std::mt19937 rng(std::get<1>(GetParam()));
  std::vector<uint64_t> model(kPages, 0);
  for (int step = 0; step < 40; ++step) {
    int writer = static_cast<int>(rng() % hosts);
    VmOffset page = rng() % kPages;
    uint64_t value = (static_cast<uint64_t>(step + 1) << 32) | rng();
    ASSERT_EQ(hosts_[writer].task->WriteValue<uint64_t>(hosts_[writer].base + page * kPage,
                                                        value),
              KernReturn::kSuccess)
        << "step " << step;
    model[page] = value;
    // Every few steps, verify convergence on every host.
    if (step % 8 == 7) {
      for (int h = 0; h < hosts; ++h) {
        for (VmOffset p = 0; p < kPages; ++p) {
          ASSERT_EQ(PollRead(h, p, model[p]), model[p])
              << "host " << h << " page " << p << " step " << step;
        }
      }
    }
  }
  // Final convergence.
  for (int h = 0; h < hosts; ++h) {
    for (VmOffset p = 0; p < kPages; ++p) {
      ASSERT_EQ(PollRead(h, p, model[p]), model[p]) << "host " << h << " page " << p;
    }
  }
}

TEST_P(ShmPropertyTest, ReadersNeverSeeTornOrForeignValues) {
  // Writers only ever store values from a recognisable set; readers on all
  // hosts must never observe anything outside {0} ∪ written-values.
  const int hosts = std::get<0>(GetParam());
  std::mt19937 rng(std::get<1>(GetParam()) ^ 0x5eed);
  std::vector<std::vector<uint64_t>> written(kPages);
  for (VmOffset p = 0; p < kPages; ++p) {
    written[p].push_back(0);
  }
  for (int step = 0; step < 30; ++step) {
    int writer = static_cast<int>(rng() % hosts);
    VmOffset page = rng() % kPages;
    uint64_t value = 0xF00D000000000000ull | (static_cast<uint64_t>(step) << 16) | page;
    ASSERT_EQ(hosts_[writer].task->WriteValue<uint64_t>(hosts_[writer].base + page * kPage,
                                                        value),
              KernReturn::kSuccess);
    written[page].push_back(value);
    // A random other host reads the page; whatever it sees must be some
    // previously written value for that page (coherence may lag, but can
    // never invent data).
    int reader = static_cast<int>(rng() % hosts);
    Result<uint64_t> seen =
        hosts_[reader].task->ReadValue<uint64_t>(hosts_[reader].base + page * kPage);
    ASSERT_TRUE(seen.ok());
    bool known = false;
    for (uint64_t w : written[page]) {
      known |= (w == seen.value());
    }
    ASSERT_TRUE(known) << "host " << reader << " saw unwritten value " << std::hex
                       << seen.value() << " on page " << page;
  }
}

INSTANTIATE_TEST_SUITE_P(
    HostsAndSeeds, ShmPropertyTest,
    ::testing::Combine(::testing::Values(2, 3), ::testing::Values(11u, 2026u)),
    [](const ::testing::TestParamInfo<ShmPropertyTest::ParamType>& info) {
      return "hosts" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- sharded-vs-centralised oracle ------------------------------------------
//
// The centralised SharedMemoryServer and a 4-shard ShmBroker run the same
// ShmDirectory state machine, so an identical seeded write trace applied to
// both arms must leave every host of both arms with byte-identical region
// contents. The sharded arm differs only in *where* each page's directory
// lives — any divergence is a partitioning or hint bug, not a protocol one.

class ShmOracleTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  static constexpr VmSize kPages = 6;
  static constexpr int kHosts = 2;
  static constexpr size_t kShards = 4;
  static constexpr int kSteps = 24;

  void BuildArms(FaultInjector* sharded_injector) {
    server_ = std::make_unique<SharedMemoryServer>(kPage);
    server_->Start();
    SendRight region = server_->GetRegion("oracle", kPages * kPage);
    ShmOptions options;
    options.injector = sharded_injector;
    broker_ = std::make_unique<ShmBroker>("oracle", kShards, options);
    broker_->Start();
    ShmRegionInfoArgs info = broker_->GetRegion("oracle", kPages * kPage);
    for (int h = 0; h < kHosts; ++h) {
      central_.push_back(MakeCtx("central" + std::to_string(h), [&](Task& task) {
        return task.VmAllocateWithPager(kPages * kPage, region, 0).value();
      }));
      sharded_.push_back(MakeCtx("sharded" + std::to_string(h), [&](Task& task) {
        return ShmBroker::MapRegion(task, info).value();
      }));
    }
  }

  template <typename MapFn>
  HostContext MakeCtx(const std::string& name, MapFn map) {
    HostContext ctx;
    Kernel::Config config;
    config.name = name;
    config.frames = 96;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    ctx.kernel = std::make_unique<Kernel>(config);
    ctx.task = ctx.kernel->CreateTask();
    ctx.base = map(*ctx.task);
    return ctx;
  }

  void TearDown() override {
    for (auto* arm : {&central_, &sharded_}) {
      for (auto& ctx : *arm) {
        ctx.task.reset();
      }
      arm->clear();
    }
    if (broker_) {
      broker_->Stop();
    }
    if (server_) {
      server_->Stop();
    }
  }

  // Polls until `ctx`'s view of `page` is byte-identical to `expect`.
  bool PollPage(HostContext& ctx, VmOffset page, const std::vector<uint8_t>& expect) {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    std::vector<uint8_t> got(kPage);
    while (std::chrono::steady_clock::now() < deadline) {
      if (IsOk(ctx.task->Read(ctx.base + page * kPage, got.data(), kPage)) && got == expect) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

  // One seeded trace, applied to both arms in lockstep; then every host of
  // both arms must converge to the model's exact bytes.
  void RunTrace(uint32_t seed) {
    std::mt19937 rng(seed);
    std::vector<std::vector<uint8_t>> model(kPages, std::vector<uint8_t>(kPage, 0));
    for (int step = 0; step < kSteps; ++step) {
      const int writer = static_cast<int>(rng() % kHosts);
      const VmOffset page = rng() % kPages;
      const VmOffset slot = (rng() % (kPage / sizeof(uint64_t))) * sizeof(uint64_t);
      const uint64_t value = (static_cast<uint64_t>(step + 1) << 32) | rng();
      std::memcpy(model[page].data() + slot, &value, sizeof(value));
      for (auto* arm : {&central_, &sharded_}) {
        HostContext& ctx = (*arm)[writer];
        ASSERT_EQ(ctx.task->WriteValue<uint64_t>(ctx.base + page * kPage + slot, value),
                  KernReturn::kSuccess)
            << "step " << step;
      }
    }
    for (auto* arm : {&central_, &sharded_}) {
      const char* label = arm == &central_ ? "central" : "sharded";
      for (int h = 0; h < kHosts; ++h) {
        for (VmOffset p = 0; p < kPages; ++p) {
          ASSERT_TRUE(PollPage((*arm)[h], p, model[p]))
              << label << " host " << h << " page " << p << " diverged from the model";
        }
      }
    }
  }

  std::unique_ptr<SharedMemoryServer> server_;
  std::unique_ptr<ShmBroker> broker_;
  std::vector<HostContext> central_;
  std::vector<HostContext> sharded_;
};

TEST_P(ShmOracleTest, ShardedAndCentralisedConvergeToIdenticalBytes) {
  BuildArms(nullptr);
  RunTrace(GetParam());
}

TEST_P(ShmOracleTest, OracleHoldsUnderDeliberatelyStaleHints) {
  // Deterministic fault schedule on the sharded arm only: every 2nd hint
  // repair is lost (the directory's probable owner goes stale) and every
  // 3rd forward is eaten on the wire. Correctness must not budge — stale
  // hints cost an extra chase hop, dropped forwards a deadline retry.
  FaultInjector injector(GetParam());
  injector.SetEveryNth(ShmDirectory::kFaultStaleHint, 2);
  injector.SetEveryNth(ShmDirectory::kFaultForwardDrop, 3);
  BuildArms(&injector);
  RunTrace(GetParam());
  EXPECT_GT(injector.Injected(ShmDirectory::kFaultStaleHint), 0u)
      << "the schedule never made a hint stale; the variant tested nothing";
  ShmCounters c = broker_->aggregate_counters();
  EXPECT_GT(c.forwards, 0u);
  EXPECT_GT(c.forward_drops, 0u) << "no forward was ever dropped";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShmOracleTest, ::testing::Range(1u, 11u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mach
