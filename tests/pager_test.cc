// Tests for the external memory management interface (§3.4): user-level data
// managers serving pager_data_request, lock/unlock negotiation, flush/clean,
// caching (pager_cache), object termination and port death, failure handling
// (§6), and multi-kernel mappings of one memory object.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/pager/data_manager.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

// A scriptable data manager for tests: serves pages from an in-memory store,
// stamped with the page offset when the store has no explicit contents.
class TestPager : public DataManager {
 public:
  enum class Mode {
    kProvide,       // Normal: answer with data.
    kUnavailable,   // Answer pager_data_unavailable.
    kSilent,        // Never answer (errant manager, §6.1).
    kManual,        // Park requests; AnswerPending() serves them later.
  };

  TestPager() : DataManager("test-pager") {}

  Mode mode = Mode::kProvide;
  VmProt provide_lock = kVmProtNone;  // lock_value for pager_data_provided.
  std::atomic<bool> auto_unlock{true};

  SendRight NewObject() { return CreateMemoryObject(++next_cookie_); }

  // Pre-load explicit contents for a page.
  void SetPage(VmOffset offset, uint8_t fill) {
    std::lock_guard<std::mutex> g(mu_);
    store_[offset] = fill;
  }

  // --- observation ------------------------------------------------------
  int init_count() const { return init_count_.load(); }
  int request_count() const { return request_count_.load(); }
  int write_count() const { return write_count_.load(); }
  int unlock_count() const { return unlock_count_.load(); }
  int death_count() const { return death_count_.load(); }
  int no_senders_count() const { return no_senders_count_.load(); }
  uint64_t last_no_senders_cookie() const { return last_no_senders_cookie_.load(); }
  // Sequence stamps for ordering assertions (0 = never happened).
  int no_senders_seq() const { return no_senders_seq_.load(); }
  int death_seq() const { return death_seq_.load(); }

  std::vector<SendRight> request_ports() const {
    std::lock_guard<std::mutex> g(mu_);
    return request_ports_;
  }
  SendRight last_request_port() const {
    std::lock_guard<std::mutex> g(mu_);
    return request_ports_.empty() ? SendRight() : request_ports_.back();
  }
  std::vector<std::byte> last_write_data() const {
    std::lock_guard<std::mutex> g(mu_);
    return last_write_data_;
  }
  VmOffset last_write_offset() const {
    std::lock_guard<std::mutex> g(mu_);
    return last_write_offset_;
  }

  int pending_count() const {
    std::lock_guard<std::mutex> g(mu_);
    return static_cast<int>(pending_.size());
  }
  // Serve every request parked by Mode::kManual, resolving their busy pages.
  void AnswerPending() {
    std::vector<PagerDataRequestArgs> pending;
    {
      std::lock_guard<std::mutex> g(mu_);
      pending.swap(pending_);
    }
    for (PagerDataRequestArgs& req : pending) {
      Provide(req);
    }
  }

  bool WaitForWrites(int n, Timeout timeout = std::chrono::milliseconds(5000)) {
    auto deadline = std::chrono::steady_clock::now() + *timeout;
    while (write_count() < n) {
      if (std::chrono::steady_clock::now() > deadline) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }
  bool WaitForDeaths(int n) {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (death_count() < n) {
      if (std::chrono::steady_clock::now() > deadline) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }
  bool WaitForNoSenders(int n) {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (no_senders_count() < n) {
      if (std::chrono::steady_clock::now() > deadline) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }

  // Expected page contents for verification.
  static uint64_t Stamp(VmOffset offset) { return 0xDA7A000000000000ull + offset; }

 protected:
  void OnInit(uint64_t object_port_id, uint64_t cookie, PagerInitArgs args) override {
    init_count_.fetch_add(1);
    std::lock_guard<std::mutex> g(mu_);
    request_ports_.push_back(args.pager_request_port);
  }

  void OnDataRequest(uint64_t object_port_id, uint64_t cookie,
                     PagerDataRequestArgs args) override {
    request_count_.fetch_add(1);
    switch (mode) {
      case Mode::kSilent:
        return;
      case Mode::kUnavailable:
        DataUnavailable(args.pager_request_port, args.offset, args.length);
        return;
      case Mode::kManual: {
        std::lock_guard<std::mutex> g(mu_);
        pending_.push_back(std::move(args));
        return;
      }
      case Mode::kProvide:
        Provide(args);
        return;
    }
  }

  void Provide(const PagerDataRequestArgs& args) {
    std::vector<std::byte> data(args.length);
    {
      std::lock_guard<std::mutex> g(mu_);
      auto it = store_.find(args.offset);
      if (it != store_.end()) {
        std::memset(data.data(), it->second, data.size());
      } else {
        uint64_t stamp = Stamp(args.offset);
        std::memcpy(data.data(), &stamp, sizeof(stamp));
      }
    }
    ProvideData(args.pager_request_port, args.offset, std::move(data), provide_lock);
  }

  void OnDataWrite(uint64_t object_port_id, uint64_t cookie, PagerDataWriteArgs args) override {
    write_count_.fetch_add(1);
    std::lock_guard<std::mutex> g(mu_);
    last_write_offset_ = args.offset;
    last_write_data_ = args.data;
  }

  void OnDataUnlock(uint64_t object_port_id, uint64_t cookie,
                    PagerDataUnlockArgs args) override {
    unlock_count_.fetch_add(1);
    if (auto_unlock.load()) {
      LockData(args.pager_request_port, args.offset, args.length, kVmProtNone);
    }
  }

  void OnPortDeath(uint64_t port_id) override {
    death_count_.fetch_add(1);
    death_seq_.store(seq_.fetch_add(1) + 1);
  }

  void OnNoSenders(uint64_t object_port_id, uint64_t cookie) override {
    no_senders_count_.fetch_add(1);
    last_no_senders_cookie_.store(cookie);
    no_senders_seq_.store(seq_.fetch_add(1) + 1);
  }

 private:
  mutable std::mutex mu_;
  uint64_t next_cookie_ = 0;
  std::map<VmOffset, uint8_t> store_;
  std::vector<SendRight> request_ports_;
  std::vector<PagerDataRequestArgs> pending_;
  std::vector<std::byte> last_write_data_;
  VmOffset last_write_offset_ = 0;
  std::atomic<int> init_count_{0};
  std::atomic<int> request_count_{0};
  std::atomic<int> write_count_{0};
  std::atomic<int> unlock_count_{0};
  std::atomic<int> death_count_{0};
  std::atomic<int> no_senders_count_{0};
  std::atomic<uint64_t> last_no_senders_cookie_{0};
  std::atomic<int> seq_{0};
  std::atomic<int> no_senders_seq_{0};
  std::atomic<int> death_seq_{0};
};

class ExternalPagerTest : public ::testing::Test {
 protected:
  ExternalPagerTest() {
    Kernel::Config config;
    config.frames = 64;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    config.vm.pager_timeout = std::chrono::milliseconds(500);
    kernel_ = std::make_unique<Kernel>(config);
    task_ = kernel_->CreateTask();
    pager_.Start();
  }
  ~ExternalPagerTest() override {
    task_.reset();
    pager_.Stop();
  }

  std::unique_ptr<Kernel> kernel_;
  std::shared_ptr<Task> task_;
  TestPager pager_;
};

TEST_F(ExternalPagerTest, MapObjectSendsPagerInit) {
  SendRight object = pager_.NewObject();
  Result<VmOffset> addr = task_->VmAllocateWithPager(4 * kPage, object, 0);
  ASSERT_TRUE(addr.ok());
  // pager_init arrives with request and name ports (§3.4.1).
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (pager_.init_count() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(pager_.init_count(), 1);
  EXPECT_TRUE(pager_.last_request_port().valid());
}

TEST_F(ExternalPagerTest, FaultFetchesDataFromManager) {
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(4 * kPage, object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr + 2 * kPage, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, TestPager::Stamp(2 * kPage));
  EXPECT_GE(pager_.request_count(), 1);
}

TEST_F(ExternalPagerTest, MappingOffsetIsHonoured) {
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(2 * kPage, object, 8 * kPage).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, TestPager::Stamp(8 * kPage));
}

TEST_F(ExternalPagerTest, UnalignedObjectOffsetRejected) {
  SendRight object = pager_.NewObject();
  EXPECT_EQ(task_->VmAllocateWithPager(kPage, object, 100).status(),
            KernReturn::kInvalidArgument);
}

TEST_F(ExternalPagerTest, ResidentPagesDoNotReRequest) {
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  int requests = pager_.request_count();
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  }
  EXPECT_EQ(pager_.request_count(), requests);  // Cache hits, no traffic (§9).
}

TEST_F(ExternalPagerTest, DataUnavailableZeroFills) {
  pager_.mode = TestPager::Mode::kUnavailable;
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t out = 0xFF;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 0u);
}

TEST_F(ExternalPagerTest, SilentManagerTimesOutWithError) {
  pager_.mode = TestPager::Mode::kSilent;
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t out = 0;
  // §6.2.1: timeout aborts the memory request.
  EXPECT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kMemoryFailure);
}

TEST_F(ExternalPagerTest, SharedMappingWithinKernel) {
  // Footnote 7: mapping the same memory object in two tasks yields
  // read/write shared access to the object, not a copy.
  SendRight object = pager_.NewObject();
  std::shared_ptr<Task> other = kernel_->CreateTask();
  VmOffset a1 = task_->VmAllocateWithPager(kPage, object, 0).value();
  VmOffset a2 = other->VmAllocateWithPager(kPage, object, 0).value();
  uint32_t v = 0x12344321;
  ASSERT_EQ(task_->Write(a1, &v, sizeof(v)), KernReturn::kSuccess);
  uint32_t out = 0;
  ASSERT_EQ(other->Read(a2, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, v);
  // Only one pager_init: one kernel, one object (§3.4.1).
  EXPECT_EQ(pager_.init_count(), 1);
}

TEST_F(ExternalPagerTest, TwoKernelsEachGetInitAndRequestPorts) {
  // "If a memory object is mapped into the address space of more than one
  // task on different hosts, the data manager will receive an initialization
  // call from each kernel" (§3.4.1).
  Kernel::Config config;
  config.frames = 64;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  Kernel kernel2(config);
  std::shared_ptr<Task> remote = kernel2.CreateTask();

  SendRight object = pager_.NewObject();
  VmOffset a1 = task_->VmAllocateWithPager(kPage, object, 0).value();
  VmOffset a2 = remote->VmAllocateWithPager(kPage, object, 0).value();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (pager_.init_count() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(pager_.init_count(), 2);
  std::vector<SendRight> ports = pager_.request_ports();
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_NE(ports[0].id(), ports[1].id());  // Distinct per-kernel request ports.

  // Both kernels read the same data.
  uint64_t o1 = 0, o2 = 0;
  ASSERT_EQ(task_->Read(a1, &o1, sizeof(o1)), KernReturn::kSuccess);
  ASSERT_EQ(remote->Read(a2, &o2, sizeof(o2)), KernReturn::kSuccess);
  EXPECT_EQ(o1, o2);
  remote.reset();
}

TEST_F(ExternalPagerTest, DirtyEvictionSendsDataWrite) {
  SendRight object = pager_.NewObject();
  // Map more pager-backed pages than physical memory and dirty them all.
  constexpr VmSize kPages = 96;
  VmOffset addr = task_->VmAllocateWithPager(kPages * kPage, object, 0).value();
  for (VmOffset p = 0; p < kPages; ++p) {
    uint64_t v = 0xBEEF000000000000ull + p;
    ASSERT_EQ(task_->Write(addr + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  EXPECT_TRUE(pager_.WaitForWrites(1));
  EXPECT_GT(pager_.write_count(), 0);
  // Clustered pageout: each pager_data_write carries one contiguous run of
  // dirty pages — a whole number of pages, never a partial one.
  ASSERT_GT(pager_.last_write_data().size(), 0u);
  EXPECT_EQ(pager_.last_write_data().size() % kPage, 0u);
}

TEST_F(ExternalPagerTest, FlushRequestWritesBackAndInvalidates) {
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint32_t v = 0x600D;
  ASSERT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  int requests_before = pager_.request_count();

  // Manager forces invalidation (pager_flush_request).
  ASSERT_EQ(DataManager::FlushRequest(pager_.last_request_port(), 0, kPage),
            KernReturn::kSuccess);
  ASSERT_TRUE(pager_.WaitForWrites(1));
  // The dirty data was written back first (§3.4.1).
  uint32_t written = 0;
  std::memcpy(&written, pager_.last_write_data().data(), sizeof(written));
  EXPECT_EQ(written, 0x600Du);

  // Next access re-requests from the manager.
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_GT(pager_.request_count(), requests_before);
}

TEST_F(ExternalPagerTest, FlushRunSplitsAtBusyPage) {
  // A page whose data is in transit (busy placeholder) must never be
  // swept into a clustered write-back run: its frame holds no data yet.
  // The same guard covers pinned pages — both are rejected at victim
  // collection, so a busy page in the middle of a dirty range splits the
  // range into two runs around it. The busy window is held open
  // explicitly (Mode::kManual + a long pager timeout), not by racing a
  // wall clock.
  Kernel::Config config;
  config.frames = 64;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.pager_timeout = std::chrono::seconds(60);
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();
  SendRight object = pager_.NewObject();
  VmOffset addr = task->VmAllocateWithPager(5 * kPage, object, 0).value();
  std::vector<std::byte> warm(5 * kPage);
  ASSERT_EQ(task->Read(addr, warm.data(), warm.size()), KernReturn::kSuccess);

  // Dirty page 2 and evict it; the write-back confirms the (async)
  // eviction completed before the re-fault below.
  uint64_t marker = 0xB052'2222ull;
  ASSERT_EQ(task->Write(addr + 2 * kPage, &marker, sizeof(marker)), KernReturn::kSuccess);
  int writes_before = pager_.write_count();
  ASSERT_EQ(DataManager::FlushRequest(pager_.last_request_port(), 2 * kPage, kPage),
            KernReturn::kSuccess);
  ASSERT_TRUE(pager_.WaitForWrites(writes_before + 1));

  // Re-fault page 2 with the manager parking requests: the fault installs
  // a busy placeholder and blocks until AnswerPending() below.
  pager_.mode = TestPager::Mode::kManual;
  std::thread faulter([&] {
    uint64_t v = 0;
    task->Read(addr + 2 * kPage, &v, sizeof(v));
  });
  while (pager_.pending_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  for (VmOffset p : {0, 1, 3, 4}) {
    uint64_t v = 0xB052'0000ull + p;
    ASSERT_EQ(task->Write(addr + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  writes_before = pager_.write_count();
  ASSERT_EQ(DataManager::FlushRequest(pager_.last_request_port(), 0, 5 * kPage),
            KernReturn::kSuccess);
  // Two runs — [0,2) and [3,5) — not one five-page (or four-page) message.
  ASSERT_TRUE(pager_.WaitForWrites(writes_before + 2));
  EXPECT_EQ(pager_.write_count(), writes_before + 2);
  EXPECT_EQ(pager_.last_write_offset(), 3 * kPage);
  EXPECT_EQ(pager_.last_write_data().size(), 2 * kPage);

  pager_.mode = TestPager::Mode::kProvide;
  pager_.AnswerPending();
  faulter.join();
}

TEST_F(ExternalPagerTest, CleanRequestWritesBackButKeepsCache) {
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint32_t v = 0xC1EA;
  ASSERT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  int requests_before = pager_.request_count();

  ASSERT_EQ(DataManager::CleanRequest(pager_.last_request_port(), 0, kPage),
            KernReturn::kSuccess);
  ASSERT_TRUE(pager_.WaitForWrites(1));

  // Data still cached: access needs no new request.
  uint32_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 0xC1EAu);
  EXPECT_EQ(pager_.request_count(), requests_before);
}

TEST_F(ExternalPagerTest, ProvidedLockValueBlocksWriteUntilUnlock) {
  // The shared-memory pattern of §4.2: data provided write-locked; a write
  // fault triggers pager_data_unlock; the manager grants the lock change.
  pager_.provide_lock = kVmProtWrite;
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);  // Read is fine.
  uint32_t v = 7;
  ASSERT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);  // Triggers unlock.
  EXPECT_GE(pager_.unlock_count(), 1);
}

TEST_F(ExternalPagerTest, UnansweredUnlockTimesOut) {
  pager_.provide_lock = kVmProtWrite;
  pager_.auto_unlock = false;
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  uint32_t v = 7;
  EXPECT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kMemoryFailure);
}

TEST_F(ExternalPagerTest, DataLockStripsExistingWriteAccess) {
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint32_t v = 1;
  ASSERT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  // Manager restricts writes (pager_data_lock).
  ASSERT_EQ(DataManager::LockData(pager_.last_request_port(), 0, kPage, kVmProtWrite),
            KernReturn::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Next write must renegotiate (auto_unlock answers it).
  int unlocks_before = pager_.unlock_count();
  ASSERT_EQ(task_->Write(addr, &v, sizeof(v)), KernReturn::kSuccess);
  EXPECT_GT(pager_.unlock_count(), unlocks_before);
}

TEST_F(ExternalPagerTest, ObjectTerminationNotifiesManager) {
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  ASSERT_EQ(task_->VmDeallocate(addr, kPage), KernReturn::kSuccess);
  // All references gone; the kernel deallocates its port rights and the
  // manager observes request-port death (§3.4.1, §4.1).
  EXPECT_TRUE(pager_.WaitForDeaths(1));
}

TEST_F(ExternalPagerTest, DroppingLastSendRightFiresNoSendersUpcall) {
  // The manager holds only the receive right; the test's send right is the
  // sole sender. Dropping it must surface as an OnNoSenders upcall carrying
  // the object's cookie, via the trusted notify port.
  SendRight object = pager_.NewObject();
  uint64_t cookie = 0;
  ASSERT_TRUE(pager_.LookupCookie(object.id(), &cookie));
  object = SendRight();
  EXPECT_TRUE(pager_.WaitForNoSenders(1));
  EXPECT_EQ(pager_.last_no_senders_cookie(), cookie);
  // Advisory by default: the object is still live in the manager.
  EXPECT_EQ(pager_.memory_object_count(), 1u);
}

TEST_F(ExternalPagerTest, ObjectTerminationFiresNoSendersBeforeRequestPortDeath) {
  // Once the client also drops its send right, kernel object termination is
  // the moment the object becomes senderless. The kernel drops its pager
  // send right before destroying the request port, so the manager hears
  // no-senders (reclaim storage) before port death (confirmation).
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  object = SendRight();  // The kernel now holds the only send right.
  EXPECT_EQ(pager_.no_senders_count(), 0);
  ASSERT_EQ(task_->VmDeallocate(addr, kPage), KernReturn::kSuccess);
  EXPECT_TRUE(pager_.WaitForNoSenders(1));
  EXPECT_TRUE(pager_.WaitForDeaths(1));
  EXPECT_GT(pager_.no_senders_seq(), 0);
  EXPECT_LT(pager_.no_senders_seq(), pager_.death_seq());
}

TEST_F(ExternalPagerTest, PagerCacheRetainsObjectAcrossMappings) {
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  // Manager permits caching (pager_cache).
  ASSERT_EQ(DataManager::SetCaching(pager_.last_request_port(), true), KernReturn::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  int requests_before = pager_.request_count();
  ASSERT_EQ(task_->VmDeallocate(addr, kPage), KernReturn::kSuccess);
  EXPECT_EQ(pager_.death_count(), 0);  // Object survives in the cache.

  // Re-map: the cached data is immediately available — no pager_init, no
  // pager_data_request (the §9 performance mechanism).
  VmOffset addr2 = task_->VmAllocateWithPager(kPage, object, 0).value();
  ASSERT_EQ(task_->Read(addr2, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, TestPager::Stamp(0));
  EXPECT_EQ(pager_.request_count(), requests_before);
  EXPECT_EQ(pager_.init_count(), 1);
}

TEST_F(ExternalPagerTest, RescindingCacheTerminatesIdleObject) {
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  ASSERT_EQ(DataManager::SetCaching(pager_.last_request_port(), true), KernReturn::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(task_->VmDeallocate(addr, kPage), KernReturn::kSuccess);
  ASSERT_EQ(pager_.death_count(), 0);
  // "A data manager may later rescind its permission to cache" (§3.4.1).
  ASSERT_EQ(DataManager::SetCaching(pager_.last_request_port(), false), KernReturn::kSuccess);
  EXPECT_TRUE(pager_.WaitForDeaths(1));
}

TEST_F(ExternalPagerTest, TrimObjectCacheReclaims) {
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  ASSERT_EQ(DataManager::SetCaching(pager_.last_request_port(), true), KernReturn::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(task_->VmDeallocate(addr, kPage), KernReturn::kSuccess);
  size_t objects_before = kernel_->vm().object_count();
  EXPECT_GE(objects_before, 1u);
  // The kernel "may choose to relinquish its access ... as it deems
  // necessary for its cache management" — here, once pages are gone.
  // Force the pages out first by flushing.
  ASSERT_EQ(DataManager::FlushRequest(pager_.last_request_port(), 0, kPage),
            KernReturn::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  kernel_->vm().TrimObjectCache();
  EXPECT_LT(kernel_->vm().object_count(), objects_before);
  EXPECT_TRUE(pager_.WaitForDeaths(1));
}

TEST_F(ExternalPagerTest, PagerDeathOfCachedObjectFreesItsPages) {
  // A §3.4.1 cache entry is kept alive only by the kernel's pager
  // registries. When its manager dies under the zero-fill policy, the
  // object must be terminated outright — severing the registries (the
  // live-object path) would drop the last reference while its pages are
  // still resident, dangling them until kernel teardown.
  Kernel::Config config;
  config.frames = 64;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.on_pager_timeout = VmSystem::Config::OnPagerTimeout::kZeroFill;
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();
  const uint64_t free_baseline = kernel.phys().free_frames();
  SendRight object = pager_.NewObject();
  VmOffset addr = task->VmAllocateWithPager(2 * kPage, object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  ASSERT_EQ(task->Read(addr + kPage, &out, sizeof(out)), KernReturn::kSuccess);
  ASSERT_EQ(DataManager::SetCaching(pager_.last_request_port(), true), KernReturn::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(task->VmDeallocate(addr, 2 * kPage), KernReturn::kSuccess);
  EXPECT_LT(kernel.phys().free_frames(), free_baseline);  // Cached pages resident.

  pager_.DestroyMemoryObject(object);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (kernel.phys().free_frames() < free_baseline &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(kernel.phys().free_frames(), free_baseline);
  EXPECT_EQ(kernel.vm().object_count(), 0u);
}

TEST_F(ExternalPagerTest, ManagerDeathFailsFaults) {
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(2 * kPage, object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  // The manager destroys the memory object port (§6.2.1 destruction).
  pager_.DestroyMemoryObject(object);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Resident page still readable; non-resident page fails.
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(task_->Read(addr + kPage, &out, sizeof(out)), KernReturn::kMemoryFailure);
}

class ZeroFillPolicyTest : public ::testing::Test {};

TEST_F(ZeroFillPolicyTest, SilentManagerZeroFillsUnderPolicy) {
  // §6.2.1: "Aborting a memory request after a timeout may involve providing
  // (zero-filled) memory backed by the default pager."
  Kernel::Config config;
  config.frames = 64;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.pager_timeout = std::chrono::milliseconds(300);
  config.vm.on_pager_timeout = VmSystem::Config::OnPagerTimeout::kZeroFill;
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();
  TestPager pager;
  pager.mode = TestPager::Mode::kSilent;
  pager.Start();
  SendRight object = pager.NewObject();
  VmOffset addr = task->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t out = 0xFF;
  EXPECT_EQ(task->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  EXPECT_EQ(out, 0u);
  task.reset();
  pager.Stop();
}

class DefaultPagerReclaimTest : public ::testing::Test {};

TEST_F(DefaultPagerReclaimTest, TerminatedAnonymousObjectsAreReclaimed) {
  // Anonymous memory is handed to the default pager via pager_create on its
  // first dirty pageout. When the region is deallocated and the kernel
  // terminates the object, the no-senders notification lets the default
  // pager drop the adopted port and its backing blocks — without it, every
  // kernel-created object leaks in the default pager forever.
  Kernel::Config config;
  config.frames = 16;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();
  size_t baseline = kernel.default_pager().memory_object_count();

  constexpr VmSize kPages = 32;
  VmOffset addr = task->VmAllocate(kPages * kPage).value();
  for (VmOffset p = 0; p < kPages; ++p) {
    uint64_t v = 0xABCD000000000000ull + p;
    ASSERT_EQ(task->Write(addr + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  // Dirtying 2x physical memory forced pageouts, so the default pager
  // adopted at least one kernel-created object.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (kernel.default_pager().memory_object_count() <= baseline &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(kernel.default_pager().memory_object_count(), baseline);

  ASSERT_EQ(task->VmDeallocate(addr, kPages * kPage), KernReturn::kSuccess);
  task.reset();
  while (kernel.default_pager().memory_object_count() > baseline &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(kernel.default_pager().memory_object_count(), baseline);
}

class ErrantManagerTest : public ::testing::Test {};

TEST_F(ErrantManagerTest, UnresponsiveManagerDirtyPagesParkWithDefaultPager) {
  // §6.2.2: dirty pages of an errant manager divert to the default pager so
  // the kernel is never starved: "If the data manager does not process and
  // release the data within an adequate period of time, the data may then be
  // paged out to the default pager."
  Kernel::Config config;
  config.frames = 32;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.errant_manager_protection = true;
  config.vm.pager_timeout = std::chrono::milliseconds(300);
  // §6.2.1: aborted memory requests substitute zero-filled memory backed by
  // the default pager, so a dead manager cannot fail user writes.
  config.vm.on_pager_timeout = VmSystem::Config::OnPagerTimeout::kZeroFill;
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();
  TestPager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  // Tiny queue so pageout's non-blocking sends fail fast once the manager
  // stops draining.
  object.port()->SetBacklog(1);

  constexpr VmSize kPages = 80;
  VmOffset addr = task->VmAllocateWithPager(kPages * kPage, object, 0).value();
  // Populate all pages while the manager is alive.
  for (VmOffset p = 0; p < kPages; ++p) {
    uint64_t v = 0;
    ASSERT_EQ(task->Read(addr + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  pager.Stop();  // Now errant: nothing drains its (size 1) queue.

  // LIVENESS: dirtying 2.5x physical memory must still complete, because
  // pageout keeps making progress by parking with the default pager.
  for (VmOffset p = 0; p < kPages; ++p) {
    uint64_t v = 0xFEED000000000000ull + p;
    ASSERT_EQ(task->Write(addr + p * kPage, &v, sizeof(v)), KernReturn::kSuccess);
  }
  VmStatistics st = kernel.vm().Statistics();
  EXPECT_GT(st.parked_pageouts, 0u);

  // DURABILITY: every written page is dirty, so evictions were parked with
  // the default pager and reads serve them back without consulting the dead
  // manager.
  for (VmOffset p = 0; p < kPages; ++p) {
    uint64_t out = 0;
    ASSERT_EQ(task->Read(addr + p * kPage, &out, sizeof(out)), KernReturn::kSuccess);
    ASSERT_EQ(out, 0xFEED000000000000ull + p) << "page " << p;
  }
  task.reset();
}

// --- fault-ahead over the pager protocol -------------------------------------

// Answers every (possibly multi-page) request with only its first page: the
// kernel must settle the provided prefix and free the unanswered remainder.
class PrefixProvidingPager : public DataManager {
 public:
  PrefixProvidingPager() : DataManager("prefix-pager") {}
  SendRight NewObject() { return CreateMemoryObject(1); }
  std::vector<std::pair<VmOffset, VmSize>> requests() const {
    std::lock_guard<std::mutex> g(mu_);
    return requests_;
  }

 protected:
  void OnDataRequest(uint64_t, uint64_t, PagerDataRequestArgs args) override {
    {
      std::lock_guard<std::mutex> g(mu_);
      requests_.emplace_back(args.offset, args.length);
    }
    std::vector<std::byte> data(kPage);
    uint64_t stamp = TestPager::Stamp(args.offset);
    std::memcpy(data.data(), &stamp, sizeof(stamp));
    ProvideData(args.pager_request_port, args.offset, std::move(data), kVmProtNone);
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<VmOffset, VmSize>> requests_;
};

TEST(FaultAheadPagerTest, PartialProvideSettlesThePrefixAndFreesTheRest) {
  Kernel::Config config;
  config.frames = 64;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.fault_ahead_max = 4;
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();
  PrefixProvidingPager pager;
  pager.Start();
  VmOffset addr = task->VmAllocateWithPager(8 * kPage, pager.NewObject(), 0).value();

  uint64_t out = 0;
  for (VmOffset p = 0; p < 4; ++p) {
    ASSERT_EQ(task->Read(addr + p * kPage, &out, sizeof(out)), KernReturn::kSuccess);
    EXPECT_EQ(out, TestPager::Stamp(p * kPage)) << "page " << p;
  }
  // Page 1's fault opened a 2-page window; only page 1 came back, so its
  // speculative neighbour was freed and page 2 re-faulted on demand as a
  // fresh request (the detector reads the truncated run as random access).
  const std::vector<std::pair<VmOffset, VmSize>> expect = {
      {0 * kPage, 1 * kPage},
      {1 * kPage, 2 * kPage},
      {2 * kPage, 1 * kPage},
      {3 * kPage, 2 * kPage}};
  EXPECT_EQ(pager.requests(), expect);
  // The unanswered placeholders (behind pages 1 and 3) were freed with
  // their speculation unconsumed — the waste counter owns up to both.
  VmStatistics st = kernel.vm().Statistics();
  EXPECT_EQ(st.fault_ahead_requests, 2u);
  EXPECT_EQ(st.fault_ahead_pages, 2u);
  EXPECT_EQ(st.fault_ahead_unused, 2u);
  task.reset();
  pager.Stop();
}

// --- wire validation of pager_data_request -----------------------------------

TEST(PagerProtocolValidationTest, DecoderRejectsMalformedRunLengths) {
  PortPair pair = PortAllocate("validator");
  auto make = [&](VmSize length) {
    PagerDataRequestArgs args;
    args.pager_request_port = pair.send;
    args.offset = 0;
    args.length = length;
    args.desired_access = kVmProtRead;
    return EncodePagerDataRequest(args);
  };
  {
    Message msg = make(kPage);
    EXPECT_TRUE(DecodePagerDataRequest(msg, kPage).ok());
  }
  {
    Message msg = make(kPagerMaxRunPages * kPage);  // Largest legal run.
    EXPECT_TRUE(DecodePagerDataRequest(msg, kPage).ok());
  }
  {
    Message msg = make(kPage + 17);  // Not a page multiple.
    EXPECT_EQ(DecodePagerDataRequest(msg, kPage).status(),
              KernReturn::kProtocolViolation);
  }
  {
    Message msg = make((kPagerMaxRunPages + 1) * kPage);  // Beyond the cap.
    EXPECT_EQ(DecodePagerDataRequest(msg, kPage).status(),
              KernReturn::kProtocolViolation);
  }
  {
    // Zero length, hand-built: the encoder itself refuses to emit one.
    Message msg(kMsgPagerDataRequest);
    msg.PushPort(pair.send);
    msg.PushU64(0);
    msg.PushU64(0);
    msg.PushU32(kVmProtRead);
    EXPECT_EQ(DecodePagerDataRequest(msg, kPage).status(),
              KernReturn::kProtocolViolation);
  }
  {
    // Page size unknown (request racing ahead of pager_init): only the
    // zero-length check applies.
    Message msg = make(kPage + 17);
    EXPECT_TRUE(DecodePagerDataRequest(msg, 0).ok());
  }
}

TEST_F(ExternalPagerTest, ForgedOversizeDataRequestIsRejectedAtTheWire) {
  SendRight object = pager_.NewObject();
  VmOffset addr = task_->VmAllocateWithPager(kPage, object, 0).value();
  uint64_t out = 0;
  ASSERT_EQ(task_->Read(addr, &out, sizeof(out)), KernReturn::kSuccess);
  const int requests_before = pager_.request_count();

  // Any send-right holder can put a message on the object port; a forged
  // request claiming an over-limit run must be dropped by the dispatcher's
  // validator and never reach OnDataRequest.
  PagerDataRequestArgs forged;
  forged.pager_request_port = pager_.last_request_port();
  forged.offset = 0;
  forged.length = (kPagerMaxRunPages + 1) * kPage;
  forged.desired_access = kVmProtRead;
  ASSERT_EQ(MsgSend(object, EncodePagerDataRequest(forged)), KernReturn::kSuccess);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (pager_.protocol_rejects() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(pager_.protocol_rejects(), 1u);
  EXPECT_EQ(pager_.request_count(), requests_before);
}

}  // namespace
}  // namespace mach
