// Unit tests for the simulated hardware: physical memory frames, hardware
// reference/modify bits, pv lists, the pmap module, and the simulated disk.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/hw/physical_memory.h"
#include "src/hw/pmap.h"
#include "src/hw/sim_disk.h"

namespace mach {
namespace {

constexpr VmSize kPage = 4096;

TEST(PhysicalMemoryTest, AllocateAndFreeFrames) {
  PhysicalMemory phys(8, kPage);
  EXPECT_EQ(phys.free_frames(), 8u);
  std::vector<uint32_t> frames;
  for (int i = 0; i < 8; ++i) {
    auto f = phys.AllocFrame();
    ASSERT_TRUE(f.has_value());
    frames.push_back(*f);
  }
  EXPECT_EQ(phys.free_frames(), 0u);
  EXPECT_FALSE(phys.AllocFrame().has_value());
  for (uint32_t f : frames) {
    phys.FreeFrame(f);
  }
  EXPECT_EQ(phys.free_frames(), 8u);
}

TEST(PhysicalMemoryTest, ReadWriteFrameData) {
  PhysicalMemory phys(4, kPage);
  uint32_t f = *phys.AllocFrame();
  const char msg[] = "hello, frame";
  phys.WriteFrame(f, 100, msg, sizeof(msg));
  char buf[sizeof(msg)] = {};
  phys.ReadFrame(f, 100, buf, sizeof(msg));
  EXPECT_STREQ(buf, msg);
}

TEST(PhysicalMemoryTest, HardwareBitsTrackAccess) {
  PhysicalMemory phys(4, kPage);
  uint32_t f = *phys.AllocFrame();
  EXPECT_FALSE(phys.IsReferenced(f));
  EXPECT_FALSE(phys.IsModified(f));
  char b = 0;
  phys.ReadFrame(f, 0, &b, 1);
  EXPECT_TRUE(phys.IsReferenced(f));
  EXPECT_FALSE(phys.IsModified(f));
  phys.ClearReference(f);
  EXPECT_FALSE(phys.IsReferenced(f));
  phys.WriteFrame(f, 0, &b, 1);
  EXPECT_TRUE(phys.IsReferenced(f));
  EXPECT_TRUE(phys.IsModified(f));
  phys.ClearModify(f);
  EXPECT_FALSE(phys.IsModified(f));
}

TEST(PhysicalMemoryTest, ZeroAndCopyFrame) {
  PhysicalMemory phys(4, kPage);
  uint32_t a = *phys.AllocFrame();
  uint32_t b = *phys.AllocFrame();
  uint32_t v = 0xABCD1234;
  phys.WriteFrame(a, 8, &v, sizeof(v));
  phys.CopyFrame(a, b);
  uint32_t out = 0;
  phys.ReadFrame(b, 8, &out, sizeof(out));
  EXPECT_EQ(out, v);
  phys.ZeroFrame(b);
  phys.ReadFrame(b, 8, &out, sizeof(out));
  EXPECT_EQ(out, 0u);
}

TEST(PhysicalMemoryTest, FreshFrameHasClearedBits) {
  PhysicalMemory phys(1, kPage);
  uint32_t f = *phys.AllocFrame();
  char b = 1;
  phys.WriteFrame(f, 0, &b, 1);
  // No pv entries -> can free directly.
  phys.FreeFrame(f);
  uint32_t f2 = *phys.AllocFrame();
  EXPECT_EQ(f2, f);
  EXPECT_FALSE(phys.IsReferenced(f2));
  EXPECT_FALSE(phys.IsModified(f2));
}

class PmapTest : public ::testing::Test {
 protected:
  PmapTest() : phys_(16, kPage), pmap_(&phys_) {}
  PhysicalMemory phys_;
  Pmap pmap_;
};

TEST_F(PmapTest, AccessWithoutMappingFaults) {
  char buf[4];
  auto r = pmap_.Access(0x1000, buf, sizeof(buf), /*is_write=*/false);
  EXPECT_EQ(r.fault, Pmap::FaultKind::kNotPresent);
  EXPECT_EQ(r.fault_addr, 0x1000u);
}

TEST_F(PmapTest, EnterThenAccess) {
  uint32_t f = *phys_.AllocFrame();
  pmap_.Enter(0x2000, f, kVmProtDefault);
  uint32_t v = 77;
  auto w = pmap_.Access(0x2010, &v, sizeof(v), /*is_write=*/true);
  EXPECT_EQ(w.fault, Pmap::FaultKind::kNone);
  uint32_t out = 0;
  auto r = pmap_.Access(0x2010, &out, sizeof(out), /*is_write=*/false);
  EXPECT_EQ(r.fault, Pmap::FaultKind::kNone);
  EXPECT_EQ(out, 77u);
  EXPECT_TRUE(phys_.IsReferenced(f));
  EXPECT_TRUE(phys_.IsModified(f));
}

TEST_F(PmapTest, ProtectionFault) {
  uint32_t f = *phys_.AllocFrame();
  pmap_.Enter(0x3000, f, kVmProtRead);
  uint32_t v = 1;
  auto w = pmap_.Access(0x3000, &v, sizeof(v), /*is_write=*/true);
  EXPECT_EQ(w.fault, Pmap::FaultKind::kProtection);
  auto r = pmap_.Access(0x3000, &v, sizeof(v), /*is_write=*/false);
  EXPECT_EQ(r.fault, Pmap::FaultKind::kNone);
}

TEST_F(PmapTest, RemoveRange) {
  uint32_t f1 = *phys_.AllocFrame();
  uint32_t f2 = *phys_.AllocFrame();
  pmap_.Enter(0x1000, f1, kVmProtDefault);
  pmap_.Enter(0x2000, f2, kVmProtDefault);
  EXPECT_EQ(pmap_.entry_count(), 2u);
  pmap_.Remove(0x1000, 0x2000);
  EXPECT_EQ(pmap_.entry_count(), 1u);
  EXPECT_FALSE(pmap_.Translate(0x1000, kVmProtRead).has_value());
  EXPECT_TRUE(pmap_.Translate(0x2000, kVmProtRead).has_value());
}

TEST_F(PmapTest, ProtectLowersButNeverRaises) {
  uint32_t f = *phys_.AllocFrame();
  pmap_.Enter(0x1000, f, kVmProtDefault);
  pmap_.Protect(0x1000, 0x2000, kVmProtRead);
  EXPECT_EQ(*pmap_.ProtectionOf(0x1000), kVmProtRead);
  // Protect with broader rights does not raise.
  pmap_.Protect(0x1000, 0x2000, kVmProtAll);
  EXPECT_EQ(*pmap_.ProtectionOf(0x1000), kVmProtRead);
}

TEST_F(PmapTest, ProtectToNoneRemoves) {
  uint32_t f = *phys_.AllocFrame();
  pmap_.Enter(0x1000, f, kVmProtDefault);
  pmap_.Protect(0x1000, 0x2000, kVmProtNone);
  EXPECT_EQ(pmap_.entry_count(), 0u);
}

TEST_F(PmapTest, PageProtectHitsAllPmaps) {
  Pmap other(&phys_);
  uint32_t f = *phys_.AllocFrame();
  pmap_.Enter(0x1000, f, kVmProtDefault);
  other.Enter(0x8000, f, kVmProtDefault);
  Pmap::PageProtect(&phys_, f, kVmProtRead);
  EXPECT_EQ(*pmap_.ProtectionOf(0x1000), kVmProtRead);
  EXPECT_EQ(*other.ProtectionOf(0x8000), kVmProtRead);
  Pmap::PageProtect(&phys_, f, kVmProtNone);
  EXPECT_EQ(pmap_.entry_count(), 0u);
  EXPECT_EQ(other.entry_count(), 0u);
  EXPECT_TRUE(phys_.PvList(f).empty());
}

TEST_F(PmapTest, ReplacingMappingUpdatesPvList) {
  uint32_t f1 = *phys_.AllocFrame();
  uint32_t f2 = *phys_.AllocFrame();
  pmap_.Enter(0x1000, f1, kVmProtDefault);
  pmap_.Enter(0x1000, f2, kVmProtRead);
  EXPECT_TRUE(phys_.PvList(f1).empty());
  EXPECT_EQ(phys_.PvList(f2).size(), 1u);
  EXPECT_EQ(*pmap_.ProtectionOf(0x1000), kVmProtRead);
}

TEST_F(PmapTest, DestructorCleansPvLists) {
  uint32_t f = *phys_.AllocFrame();
  {
    Pmap temp(&phys_);
    temp.Enter(0x1000, f, kVmProtDefault);
    EXPECT_EQ(phys_.PvList(f).size(), 1u);
  }
  EXPECT_TRUE(phys_.PvList(f).empty());
  phys_.FreeFrame(f);
}

TEST(SimDiskTest, ReadBackWrittenBlock) {
  SimClock clock;
  SimDisk disk(16, 512, &clock);
  std::vector<char> out(512);
  std::vector<char> in(512, 'x');
  disk.WriteBlock(3, in.data());
  disk.ReadBlock(3, out.data());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 512), 0);
}

TEST(SimDiskTest, CountsOperations) {
  SimClock clock;
  SimDisk disk(16, 512, &clock);
  std::vector<char> buf(512);
  disk.WriteBlock(0, buf.data());
  disk.WriteBlock(1, buf.data());
  disk.ReadBlock(0, buf.data());
  EXPECT_EQ(disk.write_ops(), 2u);
  EXPECT_EQ(disk.read_ops(), 1u);
  EXPECT_EQ(disk.total_ops(), 3u);
  EXPECT_EQ(disk.bytes_transferred(), 3u * 512u);
  disk.ResetStats();
  EXPECT_EQ(disk.total_ops(), 0u);
}

TEST(SimDiskTest, ChargesVirtualTime) {
  SimClock clock;
  DiskLatencyModel model;
  model.per_op_ns = 1000;
  model.per_byte_ns = 2;
  SimDisk disk(4, 256, &clock, model);
  std::vector<char> buf(256);
  disk.ReadBlock(0, buf.data());
  EXPECT_EQ(clock.NowNs(), 1000u + 2u * 256u);
}

TEST(SimDiskTest, BlockAllocator) {
  SimClock clock;
  SimDisk disk(4, 256, &clock);
  EXPECT_EQ(disk.free_blocks(), 4u);
  uint32_t b0 = disk.AllocBlock();
  uint32_t b1 = disk.AllocBlock();
  EXPECT_NE(b0, b1);
  EXPECT_EQ(disk.free_blocks(), 2u);
  disk.FreeBlock(b0);
  EXPECT_EQ(disk.free_blocks(), 3u);
  disk.AllocBlock();
  disk.AllocBlock();
  disk.AllocBlock();
  EXPECT_EQ(disk.AllocBlock(), UINT32_MAX);
}

TEST(SimDiskTest, PartialAccess) {
  SimClock clock;
  SimDisk disk(4, 512, &clock);
  const char msg[] = "log-record";
  EXPECT_EQ(disk.WriteAt(2, 100, msg, sizeof(msg)), KernReturn::kSuccess);
  char buf[sizeof(msg)] = {};
  EXPECT_EQ(disk.ReadAt(2, 100, buf, sizeof(buf)), KernReturn::kSuccess);
  EXPECT_STREQ(buf, msg);
}

TEST(SimDiskTest, OutOfRangeIsAnErrorNotACrash) {
  SimClock clock;
  SimDisk disk(4, 512, &clock);
  std::vector<char> buf(512);
  // Block index out of range.
  EXPECT_EQ(disk.ReadBlock(4, buf.data()), KernReturn::kInvalidArgument);
  EXPECT_EQ(disk.WriteBlock(4, buf.data()), KernReturn::kInvalidArgument);
  EXPECT_EQ(disk.ReadBlock(UINT32_MAX, buf.data()), KernReturn::kInvalidArgument);
  // Transfer running past the end of the block.
  EXPECT_EQ(disk.ReadAt(0, 500, buf.data(), 13), KernReturn::kInvalidArgument);
  EXPECT_EQ(disk.WriteAt(0, 513, buf.data(), 0), KernReturn::kInvalidArgument);
  // Failed transfers neither move data nor count as operations.
  EXPECT_EQ(disk.total_ops(), 0u);
  // Boundary cases that must succeed: last block, exact-fit transfer.
  EXPECT_EQ(disk.WriteBlock(3, buf.data()), KernReturn::kSuccess);
  EXPECT_EQ(disk.WriteAt(0, 500, buf.data(), 12), KernReturn::kSuccess);
  EXPECT_EQ(disk.ReadAt(0, 512, buf.data(), 0), KernReturn::kSuccess);
}

TEST(SimDiskTest, BadBlocksFailUntilCleared) {
  SimClock clock;
  SimDisk disk(4, 512, &clock);
  std::vector<char> buf(512, 'y');
  disk.MarkBadBlock(2);
  EXPECT_EQ(disk.WriteBlock(2, buf.data()), KernReturn::kFailure);
  EXPECT_EQ(disk.ReadBlock(2, buf.data()), KernReturn::kFailure);
  EXPECT_EQ(disk.write_errors(), 1u);
  EXPECT_EQ(disk.read_errors(), 1u);
  EXPECT_EQ(disk.WriteBlock(1, buf.data()), KernReturn::kSuccess);
  disk.ClearBadBlock(2);
  EXPECT_EQ(disk.WriteBlock(2, buf.data()), KernReturn::kSuccess);
}

TEST(SimDiskTest, InjectedFaultsFollowTheSchedule) {
  SimClock clock;
  FaultInjector inj(42);
  inj.SetSchedule(SimDisk::kFaultRead, {1});  // Fail the second read only.
  SimDisk disk(4, 512, &clock, DiskLatencyModel{}, &inj);
  std::vector<char> buf(512);
  EXPECT_EQ(disk.ReadBlock(0, buf.data()), KernReturn::kSuccess);
  EXPECT_EQ(disk.ReadBlock(0, buf.data()), KernReturn::kFailure);
  EXPECT_EQ(disk.ReadBlock(0, buf.data()), KernReturn::kSuccess);
  EXPECT_EQ(disk.read_errors(), 1u);
  EXPECT_EQ(inj.Injected(SimDisk::kFaultRead), 1u);
  // Writes are a separate fault point.
  EXPECT_EQ(disk.WriteBlock(0, buf.data()), KernReturn::kSuccess);
  EXPECT_EQ(disk.WriteBlock(0, buf.data()), KernReturn::kSuccess);
}

}  // namespace
}  // namespace mach
