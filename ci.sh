#!/usr/bin/env bash
# CI entry point: tier-1 verification plus an optional sanitizer pass.
#
#   ./ci.sh            # tier-1: configure, build, ctest, plus the IPC
#                      # port/right suites and the fault-ahead suites re-run
#                      # under ASan with leak detection (cycle reclamation
#                      # and speculative-placeholder sweeps must be leak-clean)
#   ./ci.sh asan       # tier-1 under ASan+UBSan (-DMACH_SANITIZE=address)
#   ./ci.sh tsan       # VM/IPC concurrency suites under ThreadSanitizer
#   ./ci.sh all        # all of the above, sequentially
#   ./ci.sh bench [name...]  # run benchmark binaries, JSON into BENCH_<name>.json
#                            # (all of bench/ by default; names drop the bench_ prefix)
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 4)

run_suite() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

# The port-GC and no-senders machinery is only proven correct if reclaiming
# queue cycles frees every byte: run the IPC suites leak-checked even in the
# fast lane.
ipc_leak_lane() {
  export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1}
  export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1}
  cmake -B build-asan -S . -DMACH_SANITIZE=address
  cmake --build build-asan -j "$jobs" --target ipc_test ipc_property_test
  ctest --test-dir build-asan --output-on-failure -j "$jobs" -R '^(ipc_test|ipc_property_test)$'
}

# The fault-ahead read path allocates speculative placeholder pages that the
# faulter's sweep must free on every early exit (partial provide, pager
# death, teardown): run its suites leak-checked in the fast lane so an
# unreleased placeholder or message buffer cannot land silently.
fault_ahead_leak_lane() {
  export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1}
  export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1}
  cmake -B build-asan -S . -DMACH_SANITIZE=address
  cmake --build build-asan -j "$jobs" --target vm_test pager_test
  ./build-asan/tests/vm_test --gtest_filter='FaultAheadTest.*'
  ./build-asan/tests/pager_test --gtest_filter='FaultAheadPagerTest.*:PagerProtocolValidationTest.*:ExternalPagerTest.ForgedOversizeDataRequestIsRejectedAtTheWire'
}

mode=${1:-tier1}
case "$mode" in
  tier1)
    run_suite build
    ipc_leak_lane
    fault_ahead_leak_lane
    ;;
  asan)
    # Chaos and soak tests allocate aggressively; keep ASan strict but let
    # UBSan report without aborting the whole suite on first finding.
    export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1}
    export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1}
    run_suite build-asan -DMACH_SANITIZE=address
    ;;
  tsan)
    # Data-race lane for the VM lock hierarchy: the suites that fault,
    # reclaim, and message concurrently run under ThreadSanitizer. Kept to
    # the concurrency-heavy binaries — TSan is ~10x, and the full suite
    # runs in the other lanes.
    export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}
    tsan_suites='^(vm_test|vm_concurrent_test|property_test|ipc_property_test|shm_test|shm_property_test)$'
    cmake -B build-tsan -S . -DMACH_SANITIZE=thread
    cmake --build build-tsan -j "$jobs" --target \
      vm_test vm_concurrent_test property_test ipc_property_test shm_test shm_property_test
    ctest --test-dir build-tsan --output-on-failure -j "$jobs" -R "$tsan_suites"
    ;;
  all)
    "$0" tier1
    "$0" asan
    "$0" tsan
    ;;
  bench)
    # Machine-readable perf lane: every google-benchmark binary emits JSON
    # into BENCH_<name>.json at the repo root, so perf changes land as
    # reviewable diffs alongside the code that caused them.
    cmake -B build -S .
    cmake --build build -j "$jobs"
    shift || true
    names="$*"
    if [ -z "$names" ]; then
      for b in build/bench/bench_*; do
        [ -x "$b" ] || continue
        names="$names ${b##*/bench_}"
      done
    fi
    # The multi-thread scaling bench and its single-thread ablation are one
    # experiment: regenerating one without the other leaves the pair of
    # JSON files describing different kernels.
    case " $names " in
      *" fault_mt "*) case " $names " in
        *" fault_st "*) ;;
        *) names="$names fault_st" ;;
      esac ;;
    esac
    for name in $names; do
      bin="build/bench/bench_${name}"
      if [ ! -x "$bin" ]; then
        echo "ci.sh bench: no such benchmark binary: $bin" >&2
        exit 2
      fi
      echo "=== bench_${name} -> BENCH_${name}.json"
      if [ "$name" = migration ] || [ "$name" = shm_coherence ] ||
         [ "$name" = tenant_serving ]; then
        # bench_migration, bench_shm_coherence, and bench_tenant_serving are
        # plain sweep drivers that write their own JSON document to stdout
        # (drop-rate x latency grid / centralised-vs-sharded ablation /
        # multi-tenant serving arms with the pageout-clustering ablation;
        # human table on stderr), not google-benchmark binaries.
        "$bin" > "BENCH_${name}.json"
      else
        "$bin" --benchmark_format=json --benchmark_out_format=json > "BENCH_${name}.json"
      fi
    done
    ;;
  *)
    echo "usage: $0 [tier1|asan|tsan|all|bench [name...]]" >&2
    exit 2
    ;;
esac
