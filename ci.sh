#!/usr/bin/env bash
# CI entry point: tier-1 verification plus an optional sanitizer pass.
#
#   ./ci.sh            # tier-1: configure, build, ctest
#   ./ci.sh asan       # tier-1 under ASan+UBSan (-DMACH_SANITIZE=address)
#   ./ci.sh all        # both, sequentially
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 4)

run_suite() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

mode=${1:-tier1}
case "$mode" in
  tier1)
    run_suite build
    ;;
  asan)
    # Chaos and soak tests allocate aggressively; keep ASan strict but let
    # UBSan report without aborting the whole suite on first finding.
    export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1}
    export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1}
    run_suite build-asan -DMACH_SANITIZE=address
    ;;
  all)
    "$0" tier1
    "$0" asan
    ;;
  *)
    echo "usage: $0 [tier1|asan|all]" >&2
    exit 2
    ;;
esac
