// E7 (§5.4, §6.2.2): page replacement behaviour and the errant-manager
// protection ablation.
//
// Part 1 — replacement: a task cycles through anonymous memory larger than
// physical memory, sequentially and with a hot/cold skew. Reported:
// pageouts, pageins, reactivations (the second-chance LRU at work: the hot
// set should be reactivated, not evicted).
//
// Part 2 — ablation: dirty pages belong to a data manager that stops
// draining its queue. With §6.2.2 protection ON the kernel parks the data
// with the default pager and keeps allocating; with protection OFF pageout
// cannot free those pages. Reported: pages the kernel managed to reclaim in
// a fixed window.

#include <chrono>
#include <cstdio>
#include <memory>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/pager/data_manager.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;

void ReplacementRun(const char* name, bool skewed) {
  Kernel::Config config;
  config.frames = 128;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();
  constexpr VmSize kPages = 384;  // 3x physical memory.
  VmOffset addr = task->VmAllocate(kPages * kPage).value();

  auto start = std::chrono::steady_clock::now();
  uint32_t rng = 99;
  for (int round = 0; round < 4; ++round) {
    for (VmOffset i = 0; i < kPages; ++i) {
      VmOffset page;
      if (skewed) {
        rng = rng * 1664525 + 1013904223;
        // 80% of accesses to the first 32 pages (the hot set).
        page = (rng % 10 < 8) ? (rng / 16) % 32 : (rng / 16) % kPages;
      } else {
        page = i;
      }
      uint64_t v = round * 1000 + page;
      task->WriteValue<uint64_t>(addr + page * kPage, v);
    }
  }
  double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                        start)
                  .count();
  VmStatistics st = kernel.vm().Statistics();
  std::printf("  %-12s %10llu %10llu %14llu %10.0f\n", name,
              (unsigned long long)st.pageouts, (unsigned long long)st.pageins,
              (unsigned long long)st.reactivations, ms);
  task.reset();
}

class StuckPager : public DataManager {
 public:
  StuckPager() : DataManager("stuck") {}
  SendRight NewObject() { return CreateMemoryObject(1); }

 protected:
  void OnDataRequest(uint64_t id, uint64_t cookie, PagerDataRequestArgs args) override {
    std::vector<std::byte> data(args.length, std::byte{0x22});
    ProvideData(args.pager_request_port, args.offset, std::move(data), kVmProtNone);
  }
};

uint64_t AblationRun(bool protection_on) {
  Kernel::Config config;
  config.frames = 64;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.errant_manager_protection = protection_on;
  config.vm.pager_timeout = std::chrono::milliseconds(200);
  config.vm.on_pager_timeout = VmSystem::Config::OnPagerTimeout::kZeroFill;
  Kernel kernel(config);
  std::shared_ptr<Task> task = kernel.CreateTask();
  StuckPager pager;
  pager.Start();
  SendRight object = pager.NewObject();
  object.port()->SetBacklog(1);
  constexpr VmSize kPages = 56;  // Most of physical memory.
  VmOffset addr = task->VmAllocateWithPager(kPages * kPage, object, 0).value();
  for (VmOffset p = 0; p < kPages; ++p) {
    uint64_t v = 0;
    task->Read(addr + p * kPage, &v, sizeof(v));
  }
  // Dirty everything, then stop the manager: the pages are now hostage.
  for (VmOffset p = 0; p < kPages; ++p) {
    task->WriteValue<uint64_t>(addr + p * kPage, p);
  }
  pager.Stop();

  // Put the system under pressure from a second task, then measure how
  // much physical memory the kernel was able to take back from the errant
  // manager: with protection the hostage dirty pages are parked (frames
  // freed); without it they stay pinned forever.
  std::shared_ptr<Task> other = kernel.CreateTask();
  VmOffset churn = other->VmAllocate(256 * kPage).value();
  auto start = std::chrono::steady_clock::now();
  for (VmOffset p = 0; p < 256; ++p) {
    other->WriteValue<uint64_t>(churn + p * kPage, p);
  }
  double churn_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  other->VmDeallocate(churn, 256 * kPage);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));  // Let the daemon settle.
  VmStatistics st = kernel.vm().Statistics();
  uint64_t free_frames = st.free_count;
  std::printf("  protection %-4s %14.0f %14llu %14llu\n", protection_on ? "ON" : "OFF",
              churn_ms, (unsigned long long)st.parked_pageouts,
              (unsigned long long)free_frames);
  task.reset();
  other.reset();
  return free_frames;
}

}  // namespace

int main() {
  std::printf("E7: page replacement and the Sec 6.2.2 errant-manager protection\n\n");
  std::printf("part 1: replacement over 3x physical memory (4 rounds)\n");
  std::printf("  %-12s %10s %10s %14s %10s\n", "pattern", "pageouts", "pageins",
              "reactivations", "real ms");
  ReplacementRun("sequential", /*skewed=*/false);
  ReplacementRun("hot/cold", /*skewed=*/true);
  std::printf("  shape: the skewed run reactivates its hot set instead of evicting\n"
              "  it (second-chance LRU, Sec 5.4), cutting pageouts.\n\n");

  std::printf("part 2: an errant manager holds ~7/8 of memory dirty; how much\n"
              "physical memory can the kernel take back under pressure?\n");
  std::printf("  %-15s %14s %14s %14s\n", "", "churn ms", "parked pages", "free frames");
  uint64_t on = AblationRun(true);
  uint64_t off = AblationRun(false);
  std::printf("  shape: with Sec 6.2.2 protection the hostage pages are parked with\n"
              "  the default pager and their frames recovered (%llu free vs %llu free\n"
              "  frames of 64); without it they stay pinned until the manager dies.\n",
              (unsigned long long)on, (unsigned long long)off);
  return 0;
}
