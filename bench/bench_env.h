// Shared scaffolding for the Camelot-flavoured benchmarks: one simulated
// host (kernel + zero-latency paging disk) with a RecoveryManager over a
// pair of 10 ms / 500 ns-per-block simulated disks, all charging the
// host's virtual clock. Used by bench_camelot and bench_tenant_serving so
// the disk/clock setup is written once.

#ifndef BENCH_BENCH_ENV_H_
#define BENCH_BENCH_ENV_H_

#include <memory>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/camelot/recovery_manager.h"

namespace mach {

struct BenchEnv {
  static constexpr VmSize kPage = 4096;

  explicit BenchEnv(uint32_t frames, VmSystem::Config vm = {}) {
    Kernel::Config config;
    config.frames = frames;
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    config.vm = vm;
    kernel = std::make_unique<Kernel>(config);
    data_disk = std::make_unique<SimDisk>(4096, kPage, &kernel->clock(),
                                          DiskLatencyModel{10'000'000, 500});
    log_disk = std::make_unique<SimDisk>(65536, 512, &kernel->clock(),
                                         DiskLatencyModel{10'000'000, 500});
    rm = std::make_unique<RecoveryManager>(data_disk.get(), log_disk.get(), kPage);
    rm->Start();
    task = kernel->CreateTask();
  }
  ~BenchEnv() {
    task.reset();
    rm->Stop();
  }

  BenchEnv(const BenchEnv&) = delete;
  BenchEnv& operator=(const BenchEnv&) = delete;

  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<SimDisk> data_disk;
  std::unique_ptr<SimDisk> log_disk;
  std::unique_ptr<RecoveryManager> rm;
  std::shared_ptr<Task> task;
};

}  // namespace mach

#endif  // BENCH_BENCH_ENV_H_
