// The synthetic compilation workload behind the §9 claims (E1/E2).
//
// A "build" of N modules: each module reads its source file and a set of
// shared headers (headers are re-read by every module — the re-reference
// pattern that makes caching matter), then writes an object file roughly as
// large as the source. "Compilation" itself is a trivial checksum pass so
// the benchmark isolates the I/O system.
//
// Two I/O paths over identical SimDisks:
//   * Mach path: mapped files through the external-pager filesystem — the
//     whole of physical memory caches file pages (pager_cache).
//   * Traditional path: read/write with user<->cache copies through a
//     buffer cache fixed at 10% of physical memory (§9).

#ifndef BENCH_COMPILE_WORKLOAD_H_
#define BENCH_COMPILE_WORKLOAD_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/fs/fs_server.h"
#include "src/managers/mfs/mapped_file.h"
#include "src/managers/mfs/traditional_io.h"

namespace mach_bench {

using namespace mach;

struct CompileConfig {
  uint32_t frames = 1024;      // 4 MB of physical memory.
  VmSize page_size = 4096;
  int modules = 24;            // Source files per build.
  VmSize source_pages = 6;     // Pages per source file.
  int headers = 12;            // Shared headers, read by every module.
  VmSize header_pages = 4;     // Pages per header.
  DiskLatencyModel disk;       // Default: 20ms/op winchester.
};

struct CompileResult {
  uint64_t disk_ops = 0;       // Total disk operations for the build.
  uint64_t virtual_ns = 0;     // Simulated elapsed I/O time.
  uint64_t checksum = 0;       // Workload output (keeps passes honest).
};

// --- Mach mapped-file build ----------------------------------------------------

class MachBuildEnv {
 public:
  explicit MachBuildEnv(const CompileConfig& config) : config_(config) {
    Kernel::Config kc;
    kc.name = "build-host";
    kc.frames = config.frames;
    kc.page_size = config.page_size;
    kc.disk_latency = DiskLatencyModel{0, 0};  // Paging disk: not the subject.
    kernel_ = std::make_unique<Kernel>(kc);
    fs_disk_ = std::make_unique<SimDisk>(16384, config.page_size, &kernel_->clock(),
                                         config.disk);
    fs_ = std::make_unique<FsServer>(kernel_.get(), fs_disk_.get());
    fs_->StartServer();
    task_ = kernel_->CreateTask(nullptr, "cc");
    PopulateSources();
  }
  ~MachBuildEnv() {
    task_.reset();
    fs_->StopServer();
  }

  CompileResult Build() {
    uint64_t ops_before = fs_disk_->total_ops();
    uint64_t ns_before = kernel_->clock().NowNs();
    CompileResult result;
    const VmSize ps = config_.page_size;
    std::vector<std::byte> buf(ps);
    for (int m = 0; m < config_.modules; ++m) {
      uint64_t checksum = 0;
      // Read the module source.
      MappedFile src =
          MappedFile::Open(task_.get(), fs_->service_port(), SrcName(m)).value();
      for (VmSize off = 0; off < src.size(); off += ps) {
        Result<VmSize> n = src.ReadAt(off, buf.data(), ps);
        checksum = Mix(checksum, buf.data(), n.value_or(0));
      }
      src.Close();
      // Read every header (the shared, re-referenced working set).
      for (int h = 0; h < config_.headers; ++h) {
        MappedFile header =
            MappedFile::Open(task_.get(), fs_->service_port(), HeaderName(h)).value();
        for (VmSize off = 0; off < header.size(); off += ps) {
          Result<VmSize> n = header.ReadAt(off, buf.data(), ps);
          checksum = Mix(checksum, buf.data(), n.value_or(0));
        }
        header.Close();
      }
      // Write the object file.
      MappedFile obj = MappedFile::Open(task_.get(), fs_->service_port(), ObjName(m),
                                        config_.source_pages * ps)
                           .value();
      for (VmSize off = 0; off < config_.source_pages * ps; off += ps) {
        FillPage(buf.data(), ps, checksum + off);
        obj.WriteAt(off, buf.data(), ps);
      }
      // Lazy close: dirty object pages stay in the page cache and reach the
      // disk through background pageout, off the build's critical path —
      // Mach's write-back behaviour, and half of the §9 advantage.
      obj.CloseLazy();
      result.checksum ^= checksum;
    }
    result.disk_ops = fs_disk_->total_ops() - ops_before;
    result.virtual_ns = kernel_->clock().NowNs() - ns_before;
    return result;
  }

 private:
  void PopulateSources() {
    FsClient client(task_.get(), fs_->service_port());
    const VmSize ps = config_.page_size;
    std::vector<std::byte> buf;
    auto put = [&](const std::string& name, VmSize pages, uint64_t seed) {
      client.Create(name);
      buf.assign(pages * ps, std::byte{0});
      for (VmSize off = 0; off < buf.size(); off += 8) {
        uint64_t v = seed + off;
        std::memcpy(buf.data() + off, &v, sizeof(v));
      }
      VmOffset mem = task_->VmAllocate(pages * ps).value();
      task_->Write(mem, buf.data(), buf.size());
      client.WriteFile(name, mem, buf.size());
      task_->VmDeallocate(mem, pages * ps);
    };
    for (int m = 0; m < config_.modules; ++m) {
      put(SrcName(m), config_.source_pages, 0x5000 + m);
      client.Create(ObjName(m));
    }
    for (int h = 0; h < config_.headers; ++h) {
      put(HeaderName(h), config_.header_pages, 0x9000 + h);
    }
  }

  static std::string SrcName(int m) { return "src" + std::to_string(m) + ".c"; }
  static std::string ObjName(int m) { return "src" + std::to_string(m) + ".o"; }
  static std::string HeaderName(int h) { return "hdr" + std::to_string(h) + ".h"; }

  static uint64_t Mix(uint64_t acc, const std::byte* data, VmSize n) {
    for (VmSize i = 0; i < n; i += 64) {
      acc = acc * 1099511628211ull + static_cast<uint8_t>(data[i]);
    }
    return acc;
  }
  static void FillPage(std::byte* data, VmSize n, uint64_t seed) {
    for (VmSize i = 0; i < n; i += 8) {
      uint64_t v = seed + i;
      std::memcpy(data + i, &v, sizeof(v));
    }
  }

  CompileConfig config_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<SimDisk> fs_disk_;
  std::unique_ptr<FsServer> fs_;
  std::shared_ptr<Task> task_;
};

// --- traditional UNIX build ------------------------------------------------------

class TraditionalBuildEnv {
 public:
  explicit TraditionalBuildEnv(const CompileConfig& config) : config_(config) {
    disk_ = std::make_unique<SimDisk>(16384, config.page_size, &clock_, config.disk);
    // "normally 10% of physical memory in a Berkeley UNIX system" (§9).
    fs_ = std::make_unique<TraditionalFileSystem>(disk_.get(), config.frames / 10);
    PopulateSources();
  }

  CompileResult Build() {
    uint64_t ops_before = disk_->total_ops();
    uint64_t ns_before = clock_.NowNs();
    CompileResult result;
    const VmSize ps = config_.page_size;
    std::vector<std::byte> buf(ps);
    for (int m = 0; m < config_.modules; ++m) {
      uint64_t checksum = 0;
      VmSize src_size = config_.source_pages * ps;
      for (VmSize off = 0; off < src_size; off += ps) {
        Result<VmSize> n = fs_->Read(SrcName(m), off, buf.data(), ps);
        checksum = Mix(checksum, buf.data(), n.value_or(0));
      }
      for (int h = 0; h < config_.headers; ++h) {
        VmSize hdr_size = config_.header_pages * ps;
        for (VmSize off = 0; off < hdr_size; off += ps) {
          Result<VmSize> n = fs_->Read(HeaderName(h), off, buf.data(), ps);
          checksum = Mix(checksum, buf.data(), n.value_or(0));
        }
      }
      for (VmSize off = 0; off < src_size; off += ps) {
        FillPage(buf.data(), ps, checksum + off);
        fs_->Write(ObjName(m), off, buf.data(), ps);
      }
      result.checksum ^= checksum;
    }
    result.disk_ops = disk_->total_ops() - ops_before;
    result.virtual_ns = clock_.NowNs() - ns_before;
    return result;
  }

 private:
  void PopulateSources() {
    const VmSize ps = config_.page_size;
    std::vector<std::byte> buf(ps);
    auto put = [&](const std::string& name, VmSize pages, uint64_t seed) {
      fs_->Create(name);
      for (VmSize p = 0; p < pages; ++p) {
        for (VmSize i = 0; i < ps; i += 8) {
          uint64_t v = seed + p * ps + i;
          std::memcpy(buf.data() + i, &v, sizeof(v));
        }
        fs_->Write(name, p * ps, buf.data(), ps);
      }
    };
    for (int m = 0; m < config_.modules; ++m) {
      put(SrcName(m), config_.source_pages, 0x5000 + m);
      fs_->Create(ObjName(m));
    }
    for (int h = 0; h < config_.headers; ++h) {
      put(HeaderName(h), config_.header_pages, 0x9000 + h);
    }
  }

  static std::string SrcName(int m) { return "src" + std::to_string(m) + ".c"; }
  static std::string ObjName(int m) { return "src" + std::to_string(m) + ".o"; }
  static std::string HeaderName(int h) { return "hdr" + std::to_string(h) + ".h"; }
  static uint64_t Mix(uint64_t acc, const std::byte* data, VmSize n) {
    for (VmSize i = 0; i < n; i += 64) {
      acc = acc * 1099511628211ull + static_cast<uint8_t>(data[i]);
    }
    return acc;
  }
  static void FillPage(std::byte* data, VmSize n, uint64_t seed) {
    for (VmSize i = 0; i < n; i += 8) {
      uint64_t v = seed + i;
      std::memcpy(data + i, &v, sizeof(v));
    }
  }

  CompileConfig config_;
  SimClock clock_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<TraditionalFileSystem> fs_;
};

}  // namespace mach_bench

#endif  // BENCH_COMPILE_WORKLOAD_H_
