// E15: multi-tenant transactional file serving under pressure, faults, and
// a mid-run host crash — the system-wide "traffic" benchmark. Drives the
// tests/workload tenant workload (mfs mapped files + Camelot recoverable
// ledger + sharded shm board, remote tenants paging over NetLink) across
// {1 host clean, 4 hosts chaos} x {pageout clustering on, off} and emits
// one JSON document on stdout (ci.sh bench captures it as
// BENCH_tenant_serving.json); the human-readable summary goes to stderr.
//
// Reported per arm:
//   * committed-transaction throughput over virtual time;
//   * an HDR-style log-bucket latency histogram (p50/p99/p999, virtual ns);
//   * the mid-run crash's recovery time and the partition heal time;
//   * retransmit / abort / pageout-clustering counters.
// Plus a deterministic single-host clustering ablation (BenchEnv, no
// faults): the same dirty sweep with clustering on and off, showing the
// pager_data_write message-count reduction directly.
//
// All time is virtual (SimClock) and the injector is seeded, so the
// numbers are deterministic and diffable.

#include <cstdio>
#include <string>

#include "bench/bench_env.h"
#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/camelot/recovery_manager.h"
#include "tests/workload/tenant_workload.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;

struct AblationArm {
  uint64_t pageouts = 0;
  uint64_t runs = 0;
  double pages_per_run = 0.0;
};

// One deterministic dirty sweep: a 128-page recoverable segment written
// end to end through a 64-frame pool, so roughly half the segment is
// evicted while still dirty. Reuses the Camelot bench scaffolding.
AblationArm DirtySweep(bool clustering) {
  VmSystem::Config vm;
  vm.pageout_clustering = clustering;
  BenchEnv env(64, vm);
  RecoverableSegment seg =
      RecoverableSegment::Map(env.rm.get(), env.task.get(), "sweep", 128 * kPage).value();
  Transaction txn(env.rm.get());
  for (VmOffset p = 0; p < 128; ++p) {
    uint64_t v = p + 1;
    txn.Write(seg, p * kPage, &v, sizeof(v));
  }
  txn.Commit();
  VmStatistics st = env.kernel->vm().Statistics();
  AblationArm arm;
  arm.pageouts = st.pageouts;
  arm.runs = st.pageout_runs;
  arm.pages_per_run = st.pageout_runs ? double(st.pageout_run_pages) / st.pageout_runs : 0.0;
  return arm;
}

void PrintArmJson(const TenantWorkloadOptions& opt, const TenantWorkloadResult& r) {
  double virtual_s = r.virtual_ns / 1e9;
  double throughput = virtual_s > 0 ? r.committed / virtual_s : 0.0;
  std::printf("    {\"hosts\": %d, \"chaos\": %s, \"clustering\": %s,\n", opt.hosts,
              opt.chaos ? "true" : "false", opt.pageout_clustering ? "true" : "false");
  std::printf("     \"committed\": %llu, \"aborted\": %llu, \"error_aborts\": %llu,\n",
              (unsigned long long)r.committed, (unsigned long long)r.aborted,
              (unsigned long long)r.error_aborts);
  std::printf("     \"virtual_ms\": %.3f, \"throughput_txn_per_vsec\": %.1f,\n",
              r.virtual_ns / 1e6, throughput);
  std::printf("     \"latency_vns\": %s,\n", r.latency.ToJson().c_str());
  std::printf("     \"camelot_recover_ms\": %.3f, \"heal_ms\": %.3f, \"oracle_ok\": %s,\n",
              r.camelot_recover_ns / 1e6, r.heal_ns / 1e6, r.oracle_ok ? "true" : "false");
  std::printf("     \"pageouts\": %llu, \"pageout_runs\": %llu, \"pages_per_run\": %.2f,\n",
              (unsigned long long)r.pageouts, (unsigned long long)r.pageout_runs,
              r.pageout_runs ? double(r.pageout_run_pages) / r.pageout_runs : 0.0);
  std::printf("     \"wal_enforced\": %llu, \"deferred_pageouts\": %llu,\n",
              (unsigned long long)r.wal_enforced, (unsigned long long)r.deferred_pageouts);
  std::printf("     \"bytes_retransmitted\": %llu, \"fragments_retransmitted\": %llu,\n",
              (unsigned long long)r.bytes_retransmitted,
              (unsigned long long)r.fragments_retransmitted);
  std::printf("     \"messages_lost\": %llu, \"peer_dead_events\": %llu, "
              "\"shm_forward_drops\": %llu}",
              (unsigned long long)r.messages_lost, (unsigned long long)r.peer_dead_events,
              (unsigned long long)r.shm_forward_drops);
}

}  // namespace

int main() {
  std::fprintf(stderr, "E15: multi-tenant serving under pressure, chaos, and a host crash\n\n");

  // Part 1: the clustering ablation in isolation (deterministic, no faults).
  AblationArm on = DirtySweep(true);
  AblationArm off = DirtySweep(false);
  std::fprintf(stderr, "clustering ablation (128-page dirty sweep, 64 frames):\n");
  std::fprintf(stderr, "  %-4s %9s %14s %14s\n", "mode", "pageouts", "data_writes", "pages/run");
  std::fprintf(stderr, "  %-4s %9llu %14llu %14.2f\n", "on", (unsigned long long)on.pageouts,
               (unsigned long long)on.runs, on.pages_per_run);
  std::fprintf(stderr, "  %-4s %9llu %14llu %14.2f\n\n", "off", (unsigned long long)off.pageouts,
               (unsigned long long)off.runs, off.pages_per_run);

  // Part 2: the four workload arms.
  std::printf("{\n  \"benchmark\": \"tenant_serving\",\n");
  std::printf("  \"clustering_ablation\": {\n");
  std::printf("    \"on\":  {\"pageouts\": %llu, \"data_writes\": %llu, \"pages_per_run\": %.2f},\n",
              (unsigned long long)on.pageouts, (unsigned long long)on.runs, on.pages_per_run);
  std::printf("    \"off\": {\"pageouts\": %llu, \"data_writes\": %llu, \"pages_per_run\": %.2f}\n",
              (unsigned long long)off.pageouts, (unsigned long long)off.runs, off.pages_per_run);
  std::printf("  },\n  \"configs\": [\n");

  std::fprintf(stderr, "%-6s %6s %5s %9s %9s %12s %10s %10s %10s %11s %9s\n", "hosts", "chaos",
               "clust", "committed", "aborted", "txn/vsec", "p50(vus)", "p99(vus)", "p999(vus)",
               "recover_ms", "heal_ms");
  bool first = true;
  for (bool chaos : {false, true}) {
    for (bool clustering : {true, false}) {
      TenantWorkloadOptions opt;
      opt.hosts = chaos ? 4 : 1;
      opt.tenants = 8;
      opt.txns_per_tenant = 24;
      opt.server_frames = 64;
      opt.tenant_frames = 48;
      opt.pageout_clustering = clustering;
      opt.chaos = chaos;
      opt.seed = 42;
      TenantWorkloadResult r = RunTenantWorkload(opt);
      if (!first) {
        std::printf(",\n");
      }
      first = false;
      PrintArmJson(opt, r);
      std::fprintf(stderr, "%-6d %6s %5s %9llu %9llu %12.1f %10.1f %10.1f %10.1f %11.3f %9.3f\n",
                   opt.hosts, chaos ? "yes" : "no", clustering ? "on" : "off",
                   (unsigned long long)r.committed, (unsigned long long)r.aborted,
                   r.virtual_ns ? r.committed * 1e9 / r.virtual_ns : 0.0,
                   r.latency.P50() / 1e3, r.latency.P99() / 1e3, r.latency.P999() / 1e3,
                   r.camelot_recover_ns / 1e6, r.heal_ns / 1e6);
      if (!r.oracle_ok) {
        std::fprintf(stderr, "  WARNING: exactly-once oracle failed for this arm\n");
      }
    }
  }
  std::printf("\n  ]\n}\n");
  std::fprintf(stderr,
               "\nshape: clustering cuts pager_data_write messages several-fold at equal\n"
               "pages written; chaos arms pay retransmits and the crash pays one log\n"
               "replay, while committed work still lands exactly once.\n");
  return 0;
}
