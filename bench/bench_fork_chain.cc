// Fork-chain depth sweep: the cost of copy-on-write shadow chains with and
// without shadow-chain collapse (DESIGN deviation 3, now implemented).
//
// Each generation forks from the previous one, writes one page (forcing a
// shadow object), and dies. Without collapse the survivor sits on a chain of
// `depth` shadow objects: every fault walks the whole chain and every dead
// generation's pages stay resident. With collapse the dying parents are
// spliced out as their references drop, so both fault latency and resident
// memory are O(1) in depth.
//
// Args: {depth, collapse? 0/1}. Counters: chain_len (survivor's actual chain
// length), resident (active+inactive pages), collapses, migrated.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;
constexpr VmSize kChainPages = 16;  // Pages in the inherited region.

std::unique_ptr<Kernel> MakeKernel(bool collapse) {
  Kernel::Config config;
  config.frames = 8192;  // Roomy: reclaim must not pollute the numbers.
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.shadow_collapse = collapse;
  return std::make_unique<Kernel>(config);
}

// Builds a fork chain `depth` generations deep over a kChainPages region and
// returns the sole survivor. Each generation writes one word to a page other
// than page 0 — enough to force a private shadow — then its parent dies, so
// page 0 is only ever resolvable from gen0's object at the chain's bottom.
std::shared_ptr<Task> BuildChain(Kernel& kernel, int64_t depth, VmOffset* base) {
  auto task = kernel.CreateTask(nullptr, "gen0");
  *base = task->VmAllocate(kChainPages * kPage).value();
  for (VmOffset p = 0; p < kChainPages; ++p) {
    task->WriteValue<uint64_t>(*base + p * kPage, p + 1);
  }
  for (int64_t g = 1; g <= depth; ++g) {
    auto child = kernel.CreateTask(task, "gen");
    child->WriteValue<uint64_t>(*base + (1 + g % (kChainPages - 1)) * kPage, 1000 + g);
    task = child;  // The previous generation dies here.
  }
  return task;
}

// Fault latency through the survivor's chain. VmRead resolves the page
// through the object layer on every call (no pmap caching), so each
// iteration pays exactly one ResolvePage walk.
void BM_ForkChainReadFault(benchmark::State& state) {
  const int64_t depth = state.range(0);
  const bool collapse = state.range(1) != 0;
  auto kernel = MakeKernel(collapse);
  VmOffset base = 0;
  auto task = BuildChain(*kernel, depth, &base);
  uint64_t v = 0;
  size_t i = 0;
  for (auto _ : state) {
    // Page 0 was written only by gen0: without collapse it sits at the very
    // bottom of the chain, the worst-case walk.
    task->VmRead(base, &v, sizeof(v));
    benchmark::DoNotOptimize(v);
    ++i;
  }
  VmStatistics st = kernel->vm().Statistics();
  state.counters["chain_len"] =
      static_cast<double>(kernel->vm().ShadowChainLength(task->vm_context(), base));
  state.counters["resident"] = static_cast<double>(st.active_count + st.inactive_count);
  state.counters["collapses"] = static_cast<double>(st.shadow_collapses + st.shadow_bypasses);
  state.counters["migrated"] = static_cast<double>(st.pages_migrated);
  state.SetItemsProcessed(static_cast<int64_t>(i));
  task.reset();
}
BENCHMARK(BM_ForkChainReadFault)
    ->ArgsProduct({{1, 4, 16, 64}, {0, 1}})
    ->ArgNames({"depth", "collapse"})
    ->Unit(benchmark::kMicrosecond);

// Chain construction + teardown: what fork/exit churn costs end to end,
// including the collapse work itself.
void BM_ForkChainBuild(benchmark::State& state) {
  const int64_t depth = state.range(0);
  const bool collapse = state.range(1) != 0;
  auto kernel = MakeKernel(collapse);
  for (auto _ : state) {
    VmOffset base = 0;
    auto task = BuildChain(*kernel, depth, &base);
    task.reset();
  }
  VmStatistics st = kernel->vm().Statistics();
  state.counters["collapses"] = static_cast<double>(st.shadow_collapses + st.shadow_bypasses);
  state.counters["migrated"] = static_cast<double>(st.pages_migrated);
  state.counters["resident"] = static_cast<double>(st.active_count + st.inactive_count);
  state.SetItemsProcessed(state.iterations() * depth);
  state.SetLabel(collapse ? "collapse" : "no-collapse");
}
BENCHMARK(BM_ForkChainBuild)
    ->ArgsProduct({{1, 4, 16, 64}, {0, 1}})
    ->ArgNames({"depth", "collapse"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
