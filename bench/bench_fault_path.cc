// E4 (§5.5): the cost structure of the fault handler. Each benchmark
// isolates one fault flavour:
//   resident revalidation < zero-fill < COW copy < external-pager fetch,
// with the external fetch dominated by the two messages it implies.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/pager/data_manager.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;

std::unique_ptr<Kernel> MakeKernel(uint32_t frames = 8192) {
  Kernel::Config config;
  config.frames = frames;  // Large: reclaim must not pollute the numbers.
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  return std::make_unique<Kernel>(config);
}

// An immediate-answer pager for the fetch benchmark.
class InstantPager : public DataManager {
 public:
  InstantPager() : DataManager("instant") {}
  SendRight NewObject() { return CreateMemoryObject(1); }

 protected:
  void OnDataRequest(uint64_t id, uint64_t cookie, PagerDataRequestArgs args) override {
    std::vector<std::byte> data(args.length, std::byte{0x11});
    ProvideData(args.pager_request_port, args.offset, std::move(data), kVmProtNone);
  }
};

// Zero-fill fault: first touch of anonymous memory.
void BM_ZeroFillFault(benchmark::State& state) {
  auto kernel = MakeKernel();
  auto task = kernel->CreateTask();
  const VmSize chunk = 512 * kPage;
  VmOffset addr = 0;
  VmOffset next = 0;
  VmSize used = chunk;
  uint8_t b = 1;
  for (auto _ : state) {
    if (used == chunk) {
      if (addr != 0) {
        state.PauseTiming();
        task->VmDeallocate(addr, chunk);  // Frames return; no paging noise.
        state.ResumeTiming();
      }
      addr = task->VmAllocate(chunk).value();
      next = addr;
      used = 0;
    }
    task->Write(next, &b, 1);  // One fresh page: allocate + zero + map.
    next += kPage;
    used += kPage;
  }
  state.SetItemsProcessed(state.iterations());
  task.reset();
}

// Resident revalidation: the page is resident but the hardware mapping was
// lowered (protection change), so the fault only re-enters the pmap.
void BM_ResidentRevalidation(benchmark::State& state) {
  auto kernel = MakeKernel();
  auto task = kernel->CreateTask();
  VmOffset addr = task->VmAllocate(kPage).value();
  uint8_t b = 1;
  task->Write(addr, &b, 1);
  for (auto _ : state) {
    // Drop the hardware mapping, then touch: lookup finds the resident
    // page; only hardware validation runs.
    task->vm_context().pmap->Remove(addr, addr + kPage);
    task->Read(addr, &b, 1);
  }
  state.SetItemsProcessed(state.iterations());
  task.reset();
}

// Copy-on-write fault: write to a freshly forked COW page.
void BM_CowFault(benchmark::State& state) {
  auto kernel = MakeKernel();
  auto task = kernel->CreateTask();
  const VmSize chunk = 256 * kPage;
  VmOffset addr = task->VmAllocate(chunk).value();
  std::vector<uint8_t> init(chunk, 0x7);
  task->Write(addr, init.data(), init.size());
  std::shared_ptr<Task> child;
  VmOffset next = 0;
  VmSize used = chunk;
  uint8_t b = 9;
  for (auto _ : state) {
    if (used == chunk) {
      state.PauseTiming();
      child = kernel->CreateTask(task);  // Fresh COW view.
      next = addr;
      used = 0;
      state.ResumeTiming();
    }
    child->Write(next, &b, 1);  // Shadow + page copy.
    next += kPage;
    used += kPage;
  }
  state.SetItemsProcessed(state.iterations());
  child.reset();
  task.reset();
}

// External-pager fetch: pager_data_request / pager_data_provided round trip
// through real ports and the kernel's pager service thread.
void BM_ExternalPagerFetch(benchmark::State& state) {
  auto kernel = MakeKernel();
  auto task = kernel->CreateTask();
  InstantPager pager;
  pager.Start();
  const VmSize chunk = 512 * kPage;
  SendRight object;
  VmOffset addr = 0;
  VmOffset next = 0;
  VmSize used = chunk;
  uint8_t b = 0;
  for (auto _ : state) {
    if (used == chunk) {
      state.PauseTiming();
      if (addr != 0) {
        task->VmDeallocate(addr, chunk);
        pager.DestroyMemoryObject(object);
      }
      object = pager.NewObject();
      addr = task->VmAllocateWithPager(chunk, object, 0).value();
      next = addr;
      used = 0;
      state.ResumeTiming();
    }
    task->Read(next, &b, 1);  // Full request/provide message round trip.
    next += kPage;
    used += kPage;
  }
  state.SetItemsProcessed(state.iterations());
  task.reset();
  pager.Stop();
}

// The pmap fast path (no fault at all), for scale.
void BM_ResidentAccess(benchmark::State& state) {
  auto kernel = MakeKernel();
  auto task = kernel->CreateTask();
  VmOffset addr = task->VmAllocate(kPage).value();
  uint8_t b = 1;
  task->Write(addr, &b, 1);
  for (auto _ : state) {
    task->Read(addr, &b, 1);
  }
  state.SetItemsProcessed(state.iterations());
  task.reset();
}

}  // namespace

BENCHMARK(BM_ResidentAccess);
BENCHMARK(BM_ResidentRevalidation);
BENCHMARK(BM_ZeroFillFault);
BENCHMARK(BM_CowFault);
BENCHMARK(BM_ExternalPagerFetch);

BENCHMARK_MAIN();
