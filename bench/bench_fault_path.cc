// E4 (§5.5): the cost structure of the fault handler. Each benchmark
// isolates one fault flavour:
//   resident revalidation < zero-fill < COW copy < external-pager fetch,
// with the external fetch dominated by the two messages it implies.
//
// The failure-path benchmarks at the bottom drive the fault-injection
// harness and report its counters (faults injected, retransmits, manager
// deaths recovered, pages zero-filled) as benchmark counters.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/base/fault_injector.h"
#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/net/net_link.h"
#include "src/pager/data_manager.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;

std::unique_ptr<Kernel> MakeKernel(uint32_t frames = 8192) {
  Kernel::Config config;
  config.frames = frames;  // Large: reclaim must not pollute the numbers.
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  return std::make_unique<Kernel>(config);
}

// An immediate-answer pager for the fetch benchmark.
class InstantPager : public DataManager {
 public:
  InstantPager() : DataManager("instant") {}
  SendRight NewObject() { return CreateMemoryObject(1); }

 protected:
  void OnDataRequest(uint64_t id, uint64_t cookie, PagerDataRequestArgs args) override {
    std::vector<std::byte> data(args.length, std::byte{0x11});
    ProvideData(args.pager_request_port, args.offset, std::move(data), kVmProtNone);
  }
};

// Zero-fill fault: first touch of anonymous memory.
void BM_ZeroFillFault(benchmark::State& state) {
  auto kernel = MakeKernel();
  auto task = kernel->CreateTask();
  const VmSize chunk = 512 * kPage;
  VmOffset addr = 0;
  VmOffset next = 0;
  VmSize used = chunk;
  uint8_t b = 1;
  for (auto _ : state) {
    if (used == chunk) {
      if (addr != 0) {
        state.PauseTiming();
        task->VmDeallocate(addr, chunk);  // Frames return; no paging noise.
        state.ResumeTiming();
      }
      addr = task->VmAllocate(chunk).value();
      next = addr;
      used = 0;
    }
    task->Write(next, &b, 1);  // One fresh page: allocate + zero + map.
    next += kPage;
    used += kPage;
  }
  state.SetItemsProcessed(state.iterations());
  task.reset();
}

// Resident revalidation: the page is resident but the hardware mapping was
// lowered (protection change), so the fault only re-enters the pmap.
void BM_ResidentRevalidation(benchmark::State& state) {
  auto kernel = MakeKernel();
  auto task = kernel->CreateTask();
  VmOffset addr = task->VmAllocate(kPage).value();
  uint8_t b = 1;
  task->Write(addr, &b, 1);
  for (auto _ : state) {
    // Drop the hardware mapping, then touch: lookup finds the resident
    // page; only hardware validation runs.
    task->vm_context().pmap->Remove(addr, addr + kPage);
    task->Read(addr, &b, 1);
  }
  state.SetItemsProcessed(state.iterations());
  task.reset();
}

// Copy-on-write fault: write to a freshly forked COW page.
void BM_CowFault(benchmark::State& state) {
  auto kernel = MakeKernel();
  auto task = kernel->CreateTask();
  const VmSize chunk = 256 * kPage;
  VmOffset addr = task->VmAllocate(chunk).value();
  std::vector<uint8_t> init(chunk, 0x7);
  task->Write(addr, init.data(), init.size());
  std::shared_ptr<Task> child;
  VmOffset next = 0;
  VmSize used = chunk;
  uint8_t b = 9;
  for (auto _ : state) {
    if (used == chunk) {
      state.PauseTiming();
      child = kernel->CreateTask(task);  // Fresh COW view.
      next = addr;
      used = 0;
      state.ResumeTiming();
    }
    child->Write(next, &b, 1);  // Shadow + page copy.
    next += kPage;
    used += kPage;
  }
  state.SetItemsProcessed(state.iterations());
  child.reset();
  task.reset();
}

// External-pager fetch: pager_data_request / pager_data_provided round trip
// through real ports and the kernel's pager service thread.
void BM_ExternalPagerFetch(benchmark::State& state) {
  auto kernel = MakeKernel();
  auto task = kernel->CreateTask();
  InstantPager pager;
  pager.Start();
  const VmSize chunk = 512 * kPage;
  SendRight object;
  VmOffset addr = 0;
  VmOffset next = 0;
  VmSize used = chunk;
  uint8_t b = 0;
  for (auto _ : state) {
    if (used == chunk) {
      state.PauseTiming();
      if (addr != 0) {
        task->VmDeallocate(addr, chunk);
        pager.DestroyMemoryObject(object);
      }
      object = pager.NewObject();
      addr = task->VmAllocateWithPager(chunk, object, 0).value();
      next = addr;
      used = 0;
      state.ResumeTiming();
    }
    task->Read(next, &b, 1);  // Full request/provide message round trip.
    next += kPage;
    used += kPage;
  }
  state.SetItemsProcessed(state.iterations());
  task.reset();
  pager.Stop();
}

// The pmap fast path (no fault at all), for scale.
void BM_ResidentAccess(benchmark::State& state) {
  auto kernel = MakeKernel();
  auto task = kernel->CreateTask();
  VmOffset addr = task->VmAllocate(kPage).value();
  uint8_t b = 1;
  task->Write(addr, &b, 1);
  for (auto _ : state) {
    task->Read(addr, &b, 1);
  }
  state.SetItemsProcessed(state.iterations());
  task.reset();
}

// --- failure paths ----------------------------------------------------------

// A manager that never answers; destroying its object exercises the death
// recovery path.
class SilentPager : public DataManager {
 public:
  SilentPager() : DataManager("silent") {}
  SendRight NewObject() { return CreateMemoryObject(1); }

 protected:
  void OnDataRequest(uint64_t, uint64_t, PagerDataRequestArgs) override {}
};

// Manager death mid-fault: the faulting thread is woken by the death
// notification and resolved under the zero-fill policy — this measures the
// recovery latency that replaces the 5 s pager timeout.
void BM_PagerDeathRecovery(benchmark::State& state) {
  Kernel::Config config;
  config.frames = 8192;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.on_pager_timeout = VmSystem::Config::OnPagerTimeout::kZeroFill;
  auto kernel = std::make_unique<Kernel>(config);
  auto task = kernel->CreateTask();
  SilentPager pager;
  pager.Start();
  for (auto _ : state) {
    SendRight object = pager.NewObject();
    VmOffset addr = task->VmAllocateWithPager(kPage, object, 0).value();
    uint8_t b = 0;
    std::thread faulter([&] { task->Read(addr, &b, 1); });
    pager.DestroyMemoryObject(object);
    faulter.join();
    state.PauseTiming();
    task->VmDeallocate(addr, kPage);
    state.ResumeTiming();
  }
  VmStatistics stats = kernel->vm().Statistics();
  state.counters["deaths_recovered"] = static_cast<double>(stats.manager_deaths);
  state.counters["death_resolved_pages"] = static_cast<double>(stats.death_resolved_pages);
  state.counters["pages_zero_filled"] = static_cast<double>(stats.zero_fill_count);
  task.reset();
  pager.Stop();
}

// Demand paging through a small frame pool while the backing disk throws
// seeded transient errors: the steady-state cost of running *through*
// faults rather than around them.
void BM_PagingUnderDiskFaults(benchmark::State& state) {
  FaultInjector inj(42);
  inj.SetProbability(SimDisk::kFaultRead, 0.02);
  inj.SetProbability(SimDisk::kFaultWrite, 0.02);
  Kernel::Config config;
  config.frames = 64;  // Working set below is 4x this: constant pageout.
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.on_pager_timeout = VmSystem::Config::OnPagerTimeout::kZeroFill;
  config.fault_injector = &inj;
  auto kernel = std::make_unique<Kernel>(config);
  auto task = kernel->CreateTask();
  const VmSize pages = 256;
  VmOffset base = task->VmAllocate(pages * kPage).value();
  uint64_t i = 0;
  for (auto _ : state) {
    VmOffset addr = base + (i++ % pages) * kPage;
    uint64_t v = i;
    task->Write(addr, &v, sizeof(v));
  }
  state.SetItemsProcessed(state.iterations());
  VmStatistics stats = kernel->vm().Statistics();
  state.counters["faults_injected"] = static_cast<double>(inj.TotalInjected());
  state.counters["backing_errors"] =
      static_cast<double>(kernel->default_pager().backing_error_count());
  state.counters["pages_zero_filled"] = static_cast<double>(stats.zero_fill_count);
  state.counters["pageouts"] = static_cast<double>(stats.pageouts);
  task.reset();
}

// Request/reply over a lossy link in reliable mode: the retransmit scheme's
// cost, with its counters.
void BM_RpcOverLossyLink(benchmark::State& state) {
  Kernel::Config config;
  config.frames = 128;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.name = "bench-a";
  auto host_a = std::make_unique<Kernel>(config);
  config.name = "bench-b";
  auto host_b = std::make_unique<Kernel>(config);
  FaultInjector inj(42);
  inj.SetProbability(NetLink::kFaultDrop, 0.1);
  SimClock net_clock;
  NetFaultConfig faults;
  faults.injector = &inj;
  faults.reliable = true;
  NetLink link(&host_a->vm(), &host_b->vm(), &net_clock, kNormaLatency, faults);

  PortPair service = PortAllocate("bench-echo");
  std::atomic<bool> stop{false};
  std::thread server([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Result<Message> req = MsgReceive(service.receive, std::chrono::milliseconds(50));
      if (req.ok()) {
        MsgSend(req.value().reply_port(), Message(req.value().id() + 1));
      }
    }
  });
  SendRight proxy = link.ProxyForA(service.send);
  for (auto _ : state) {
    Result<Message> reply =
        MsgRpc(proxy, Message(1), kWaitForever, std::chrono::seconds(10));
    if (!reply.ok()) {
      state.SkipWithError("rpc lost on a reliable link");
      break;
    }
  }
  stop.store(true, std::memory_order_release);
  server.join();
  state.SetItemsProcessed(state.iterations());
  state.counters["faults_injected"] = static_cast<double>(inj.TotalInjected());
  state.counters["retransmits"] = static_cast<double>(link.retransmits());
  state.counters["wire_drops"] = static_cast<double>(link.messages_dropped());
  state.counters["lost"] = static_cast<double>(link.messages_lost());
}

// --- adaptive fault-ahead over the wire (E16) -------------------------------

// Serves per-page stamps for whole runs through the PagerRunBuilder,
// counting wire messages in both directions.
class RemoteRunPager : public DataManager {
 public:
  RemoteRunPager() : DataManager("remote-runs") {}
  SendRight NewObject() { return CreateMemoryObject(1); }
  uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  uint64_t provide_messages() const { return provides_.load(std::memory_order_relaxed); }

 protected:
  void OnDataRequest(uint64_t, uint64_t, PagerDataRequestArgs args) override {
    requests_.fetch_add(1, std::memory_order_relaxed);
    PagerRunBuilder run(std::move(args.pager_request_port));
    for (VmOffset off = args.offset; off < args.offset + args.length; off += kPage) {
      std::vector<std::byte> page(kPage, std::byte{0x5C});
      run.AddData(off, std::move(page), kVmProtNone);
    }
    run.Flush();
    provides_.fetch_add(run.messages_sent(), std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> provides_{0};
};

// A 64-page read whose pager sits across a NetLink in reliable mode.
// Sequential scans batch into multi-page data requests — fewer messages per
// page — while random access must stay single-page. Args: {fault_ahead
// on/off, fragment drop % on the wire}. The counters report message economy
// (req_per_page, msgs_per_page) and the speculation waste (fa_unused) so
// the E16 ledger stays honest.
void RemoteReadOverLink(benchmark::State& state, bool sequential) {
  const bool fault_ahead = state.range(0) != 0;
  const double frag_drop = static_cast<double>(state.range(1)) / 100.0;
  constexpr VmSize kScanPages = 64;

  Kernel::Config config;
  config.frames = 8192;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.name = "remote-a";
  auto host_a = std::make_unique<Kernel>(config);
  config.name = "remote-b";
  config.vm.fault_ahead = fault_ahead;  // The ablation under test (client side).
  auto host_b = std::make_unique<Kernel>(config);

  FaultInjector inj(42);
  inj.SetProbability(NetLink::kFaultFragDrop, frag_drop);
  SimClock net_clock;
  NetFaultConfig faults;
  faults.injector = frag_drop > 0 ? &inj : nullptr;
  faults.reliable = true;
  NetLink link(&host_a->vm(), &host_b->vm(), &net_clock, kNormaLatency, faults);

  RemoteRunPager pager;
  pager.Start();
  auto task = host_b->CreateTask(nullptr, "remote-scan");

  // 37 is coprime to 64 and never yields a +1 successor, so the random
  // order defeats the sequentiality detector by construction.
  VmOffset order[kScanPages];
  for (VmOffset i = 0; i < kScanPages; ++i) {
    order[i] = sequential ? i : (i * 37) % kScanPages;
  }

  uint8_t b = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SendRight object = pager.NewObject();
    VmOffset base =
        task->VmAllocateWithPager(kScanPages * kPage, link.ProxyForB(object), 0).value();
    state.ResumeTiming();
    for (VmOffset i = 0; i < kScanPages; ++i) {
      task->Read(base + order[i] * kPage, &b, 1);
    }
    state.PauseTiming();
    task->VmDeallocate(base, kScanPages * kPage);
    pager.DestroyMemoryObject(object);
    state.ResumeTiming();
  }
  const double pages = static_cast<double>(state.iterations()) * kScanPages;
  state.SetItemsProcessed(static_cast<int64_t>(pages));
  VmStatistics stats = host_b->vm().Statistics();
  state.counters["req_per_page"] = static_cast<double>(pager.requests()) / pages;
  state.counters["msgs_per_page"] =
      static_cast<double>(pager.requests() + pager.provide_messages()) / pages;
  state.counters["fa_requests"] = static_cast<double>(stats.fault_ahead_requests);
  state.counters["fa_pages"] = static_cast<double>(stats.fault_ahead_pages);
  state.counters["fa_unused"] = static_cast<double>(stats.fault_ahead_unused);
  state.counters["retransmits"] = static_cast<double>(link.retransmits());
  task.reset();
  pager.Stop();
}

void BM_RemoteSequentialScan(benchmark::State& state) { RemoteReadOverLink(state, true); }
void BM_RemoteRandomScan(benchmark::State& state) { RemoteReadOverLink(state, false); }

}  // namespace

BENCHMARK(BM_ResidentAccess);
BENCHMARK(BM_ResidentRevalidation);
BENCHMARK(BM_ZeroFillFault);
BENCHMARK(BM_CowFault);
BENCHMARK(BM_ExternalPagerFetch);
BENCHMARK(BM_PagerDeathRecovery)->Iterations(50)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PagingUnderDiskFaults);
BENCHMARK(BM_RpcOverLossyLink);
BENCHMARK(BM_RemoteSequentialScan)
    ->ArgNames({"fault_ahead", "frag_drop_pct"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 5})
    ->Args({1, 5})
    ->Iterations(20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RemoteRandomScan)
    ->ArgNames({"fault_ahead", "frag_drop_pct"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 5})
    ->Args({1, 5})
    ->Iterations(20)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
