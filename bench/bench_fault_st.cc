// E13 (single-thread ablation): what the fine-grained lock hierarchy and
// the lock-free fast paths cost — and win back — on the uncontended fault
// path. The retired global-lock kernel resolved a resident read re-fault in
// ~0.10 µs (one lock, no hierarchy; see EXPERIMENTS.md E11/E13 history);
// the hierarchy alone paid ~0.29 µs for the same fault. This benchmark
// reports the resident re-fault with the optimistic (seqlock) map lookup
// off (Arg(0): the hierarchy-only locked path) and on (Arg(1): the
// lock-free tier), plus the zero-fill first-fault cost for scale, and
// derives locks-per-fault from the lock-probe counters so the report shows
// *why* the time moved, not just that it moved.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;

std::unique_ptr<Kernel> MakeKernel(uint32_t frames, bool optimistic) {
  Kernel::Config config;
  config.frames = frames;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  config.vm.optimistic_map_lookup = optimistic;
  return std::make_unique<Kernel>(config);
}

// Resident read re-fault: the page is settled and active, only the pmap
// translation is missing. This is the path the ISSUE's 1.2×-of-global-lock
// target is about. The pmap Remove stays inside the timed region —
// PauseTiming costs ~0.5 µs/iteration here, an order of magnitude more
// than the fault being measured — matching how the 0.10 µs global-lock and
// 0.29 µs hierarchy baselines were taken (bench_fault_mt's resident-read
// column, 1 thread). Arg: 0 = locked path only, 1 = optimistic tier on.
void BM_ResidentReadFault(benchmark::State& state) {
  const bool optimistic = state.range(0) != 0;
  constexpr int kPages = 64;
  auto kernel = MakeKernel(kPages + 128, optimistic);
  auto task = kernel->CreateTask();
  const VmOffset base = task->VmAllocate(VmSize{kPages} * kPage).value();
  std::vector<uint8_t> buf(kPage, 0x5A);
  for (int p = 0; p < kPages; ++p) {
    task->Write(base + static_cast<VmSize>(p) * kPage, buf.data(), kPage);
  }

  VmStatistics before = task->VmStats();
  uint32_t v = 0;
  int p = 0;
  for (auto _ : state) {
    const VmOffset addr = base + static_cast<VmSize>(p) * kPage;
    task->vm_context().pmap->Remove(addr, addr + kPage);
    benchmark::DoNotOptimize(task->Read(addr, &v, sizeof(v)));
    p = (p + 1) % kPages;
  }
  VmStatistics after = task->VmStats();

  const double faults = static_cast<double>(after.faults - before.faults);
  if (faults > 0) {
    state.counters["locks_per_fault"] =
        static_cast<double>(after.fault_lock_ops - before.fault_lock_ops) / faults;
    state.counters["optimistic_share"] =
        static_cast<double>(after.map_lookups_optimistic - before.map_lookups_optimistic) /
        faults;
  }
  state.counters["map_lookup_retries"] =
      static_cast<double>(after.map_lookup_retries - before.map_lookup_retries);
  state.SetItemsProcessed(state.iterations());
}

// The fault machinery in isolation: Fault() re-entered on a resident,
// already-translated page, so the loop exercises exactly the lookup +
// validate + pmap-install path with no pmap Remove churn, no Task::Read
// wrapper, and no data copy. This is the number to read against the
// 0.10 µs global-lock / 0.29 µs hierarchy reference points.
void BM_ResidentFaultCall(benchmark::State& state) {
  const bool optimistic = state.range(0) != 0;
  constexpr int kPages = 64;
  auto kernel = MakeKernel(kPages + 128, optimistic);
  auto task = kernel->CreateTask();
  const VmOffset base = task->VmAllocate(VmSize{kPages} * kPage).value();
  std::vector<uint8_t> buf(kPage, 0x5A);
  uint32_t v = 0;
  for (int p = 0; p < kPages; ++p) {
    task->Write(base + static_cast<VmSize>(p) * kPage, buf.data(), kPage);
    task->Read(base + static_cast<VmSize>(p) * kPage, &v, sizeof(v));
  }

  TaskVm& tvm = task->vm_context();
  VmStatistics before = task->VmStats();
  int p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernel->vm().Fault(tvm, base + static_cast<VmSize>(p) * kPage, kVmProtRead));
    p = (p + 1) % kPages;
  }
  VmStatistics after = task->VmStats();

  const double faults = static_cast<double>(after.faults - before.faults);
  if (faults > 0) {
    state.counters["locks_per_fault"] =
        static_cast<double>(after.fault_lock_ops - before.fault_lock_ops) / faults;
    state.counters["optimistic_share"] =
        static_cast<double>(after.map_lookups_optimistic - before.map_lookups_optimistic) /
        faults;
  }
  state.SetItemsProcessed(state.iterations());
}

// Zero-fill first fault (allocate + zero + map), same toggle, for scale:
// the optimistic tier cannot help a non-resident page, so the two arms
// should be within noise of each other.
void BM_ZeroFillFault(benchmark::State& state) {
  const bool optimistic = state.range(0) != 0;
  auto kernel = MakeKernel(4096 + 256, optimistic);
  auto task = kernel->CreateTask();
  const VmSize region = VmSize{4096} * kPage;
  VmOffset next = task->VmAllocate(region).value();
  const VmOffset end = next + region;
  uint8_t b = 1;
  for (auto _ : state) {
    if (next >= end) {
      // Region exhausted: re-arm outside the timed section.
      state.PauseTiming();
      task->VmDeallocate(end - region, region);
      next = task->VmAllocate(region).value();
      state.ResumeTiming();
    }
    task->Write(next, &b, 1);
    next += kPage;
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_ResidentReadFault)->Arg(0)->Arg(1);
BENCHMARK(BM_ResidentFaultCall)->Arg(0)->Arg(1);
BENCHMARK(BM_ZeroFillFault)->Arg(0)->Arg(1);

int main(int argc, char** argv) {
  const unsigned cpus = std::thread::hardware_concurrency();
  benchmark::AddCustomContext("single_cpu_host", cpus <= 1 ? "true" : "false");
  benchmark::AddCustomContext("host_cpus", std::to_string(cpus));
  // The fixed reference points this ablation is read against (µs per
  // resident read re-fault, same container class): the retired global-lock
  // kernel, and the lock hierarchy before this optimisation pass.
  benchmark::AddCustomContext("baseline_global_lock_us", "0.10");
  benchmark::AddCustomContext("baseline_lock_hierarchy_us", "0.29");
  if (cpus <= 1) {
    fprintf(stderr,
            "*** NOTE: single-CPU host (hardware_concurrency=%u); single-\n"
            "*** thread numbers here are still valid, but compare them only\n"
            "*** against baselines measured on the same host class.\n",
            cpus);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
