// E6 (§8.2, after Zayas): copy-on-reference task migration vs eager copy.
//
// A task with a large address space migrates across a NORMA link. Reported
// per strategy and per fraction-of-address-space-touched:
//   * time-to-resume: simulated network time spent before the migrated task
//     can run (eager pays the whole copy; copy-on-reference ~nothing);
//   * total pages moved and total network time after the migrated task has
//     touched its working set.
// Shape to reproduce: copy-on-reference resume time is ~constant while
// eager grows linearly with address-space size, and total data moved is
// proportional to the touched fraction.

#include <cstdio>
#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/migrate/migration_manager.h"
#include "src/net/net_link.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;

std::unique_ptr<Kernel> MakeHost(const std::string& name, uint32_t frames) {
  Kernel::Config config;
  config.name = name;
  config.frames = frames;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  return std::make_unique<Kernel>(config);
}

struct RunResult {
  uint64_t resume_us = 0;       // Net time before the task could run.
  uint64_t total_us = 0;        // Net time after touching the working set.
  uint64_t pages_moved = 0;
};

RunResult Run(MigrationManager::Strategy strategy, VmSize space_pages, int touched_pct) {
  auto src = MakeHost("src", static_cast<uint32_t>(space_pages + 128));
  auto dst = MakeHost("dst", static_cast<uint32_t>(space_pages + 128));
  SimClock net_clock;
  NetLink link(&src->vm(), &dst->vm(), &net_clock, kNormaLatency);

  std::shared_ptr<Task> victim = src->CreateTask(nullptr, "victim");
  VmOffset addr = victim->VmAllocate(space_pages * kPage).value();
  for (VmOffset p = 0; p < space_pages; ++p) {
    victim->WriteValue<uint64_t>(addr + p * kPage, 0xE0E0000000000000ull + p);
  }

  MigrationManager migrator;
  migrator.Start();
  MigrationManager::Options options;
  options.strategy = strategy;
  options.prepage_pages = 8;
  options.export_port = [&](SendRight object) { return link.ProxyForB(std::move(object)); };
  // For the eager baseline the data crosses the network too: model it by
  // charging the link for each page the migrator moves synchronously.
  uint64_t net_before = net_clock.NowNs();
  Result<std::shared_ptr<Task>> moved = migrator.Migrate(victim, dst.get(), options);
  if (strategy == MigrationManager::Strategy::kEager) {
    // Eager used vm_read/vm_write directly; charge the wire for the bytes.
    net_clock.Charge(migrator.pages_transferred() *
                     (kNormaLatency.per_msg_ns + kNormaLatency.per_byte_ns * kPage));
  }
  RunResult result;
  result.resume_us = (net_clock.NowNs() - net_before) / 1000;

  // The migrated task touches `touched_pct` of its space.
  std::shared_ptr<Task> task = moved.value();
  VmSize touch_pages = space_pages * touched_pct / 100;
  for (VmOffset p = 0; p < touch_pages; ++p) {
    uint64_t v = 0;
    task->Read(addr + p * kPage, &v, sizeof(v));
  }
  result.total_us = (net_clock.NowNs() - net_before) / 1000;
  result.pages_moved = migrator.pages_transferred();
  task.reset();
  victim.reset();
  migrator.Stop();
  return result;
}

}  // namespace

int main() {
  std::printf("E6: task migration over a NORMA link — copy-on-reference vs eager\n\n");
  std::printf("%-18s %8s %8s %14s %14s %12s\n", "strategy", "space", "touch%",
              "resume (us)", "total (us)", "pages moved");
  struct Case {
    MigrationManager::Strategy strategy;
    const char* name;
  };
  const Case cases[] = {
      {MigrationManager::Strategy::kEager, "eager"},
      {MigrationManager::Strategy::kCopyOnReference, "copy-on-ref"},
      {MigrationManager::Strategy::kPrePage, "prepage(8)"},
  };
  const VmSize spaces[] = {64, 256};
  const int touches[] = {5, 25, 100};
  for (const Case& c : cases) {
    for (VmSize space : spaces) {
      for (int touch : touches) {
        RunResult r = Run(c.strategy, space, touch);
        std::printf("%-18s %7llup %8d %14llu %14llu %12llu\n", c.name,
                    (unsigned long long)space, touch, (unsigned long long)r.resume_us,
                    (unsigned long long)r.total_us, (unsigned long long)r.pages_moved);
      }
    }
  }
  std::printf("\nshape: eager resume time grows with address-space size; copy-on-\n"
              "reference resumes immediately and moves only the touched fraction\n"
              "(Sec 8.2); pre-paging trades a little resume time for fewer faults.\n");
  return 0;
}
