// E6 (§8.2, after Zayas) extended for the fragmented reliable transport: a
// copy-on-reference migration and a 64-page bulk OOL transfer, swept over a
// fragment-drop rate x latency grid. Emits one JSON document on stdout
// (ci.sh bench captures it as BENCH_migration.json); the human-readable
// summary goes to stderr.
//
// Reported per (latency regime, drop rate):
//   * resume_us / total_us: simulated network time before the migrated task
//     can run, and after it has touched all 64 pages;
//   * retransmitted_bytes vs payload_bytes: the cost of loss under the
//     selective-repeat transport. One dropped fragment retransmits one
//     fragment, so even at 10% drop the overhead stays a modest fraction of
//     the payload (the acceptance bar is < 25% for the bulk transfer).
// All time is virtual (SimClock) and the injector is seeded, so the numbers
// are deterministic and diffable.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/base/fault_injector.h"
#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/migrate/migration_manager.h"
#include "src/net/net_link.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;
constexpr VmSize kPages = 64;

std::unique_ptr<Kernel> MakeHost(const std::string& name, uint32_t frames) {
  Kernel::Config config;
  config.name = name;
  config.frames = frames;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  return std::make_unique<Kernel>(config);
}

struct LinkStats {
  uint64_t payload_bytes = 0;
  uint64_t retransmitted_bytes = 0;
  uint64_t fragments_sent = 0;
  uint64_t fragments_retransmitted = 0;
  uint64_t sacks_sent = 0;
  uint64_t messages_lost = 0;
  double retrans_ratio = 0.0;
};

LinkStats Snapshot(const NetLink& link) {
  LinkStats s;
  s.payload_bytes = link.bytes_forwarded();
  s.retransmitted_bytes = link.bytes_retransmitted();
  s.fragments_sent = link.fragments_sent();
  s.fragments_retransmitted = link.fragments_retransmitted();
  s.sacks_sent = link.sacks_sent();
  s.messages_lost = link.messages_lost();
  s.retrans_ratio =
      s.payload_bytes == 0
          ? 0.0
          : static_cast<double>(s.retransmitted_bytes) / static_cast<double>(s.payload_bytes);
  return s;
}

NetFaultConfig FaultPlan(FaultInjector* inj, int drop_pct) {
  // Drop applies symmetrically to data fragments and SACKs; the budget is
  // sized so loss is effectively impossible at these rates.
  inj->SetProbability(NetLink::kFaultFragDrop, drop_pct / 100.0);
  inj->SetProbability(NetLink::kFaultAckDrop, drop_pct / 100.0);
  NetFaultConfig net;
  net.injector = inj;
  net.reliable = true;
  net.max_retransmits = 12;
  return net;
}

struct MigrateResult {
  uint64_t resume_us = 0;  // Net time before the task could run.
  uint64_t total_us = 0;   // Net time after touching all pages.
  uint64_t pages_moved = 0;
  LinkStats link;
};

MigrateResult RunMigration(NetLatencyModel latency, int drop_pct) {
  auto src = MakeHost("src", kPages + 128);
  auto dst = MakeHost("dst", kPages + 128);
  SimClock net_clock;
  FaultInjector inj(42);
  NetLink link(&src->vm(), &dst->vm(), &net_clock, latency, FaultPlan(&inj, drop_pct));

  std::shared_ptr<Task> victim = src->CreateTask(nullptr, "victim");
  VmOffset addr = victim->VmAllocate(kPages * kPage).value();
  for (VmOffset p = 0; p < kPages; ++p) {
    victim->WriteValue<uint64_t>(addr + p * kPage, 0xE0E0000000000000ull + p);
  }

  MigrationManager migrator;
  migrator.Start();
  MigrationManager::Options options;
  options.strategy = MigrationManager::Strategy::kCopyOnReference;
  options.export_port = [&](SendRight object) { return link.ProxyForB(std::move(object)); };
  uint64_t net_before = net_clock.NowNs();
  Result<std::shared_ptr<Task>> moved = migrator.Migrate(victim, dst.get(), options);
  MigrateResult result;
  result.resume_us = (net_clock.NowNs() - net_before) / 1000;
  if (moved.ok()) {
    std::shared_ptr<Task> task = moved.value();
    for (VmOffset p = 0; p < kPages; ++p) {
      uint64_t v = 0;
      task->Read(addr + p * kPage, &v, sizeof(v));
    }
    task.reset();
  }
  result.total_us = (net_clock.NowNs() - net_before) / 1000;
  result.pages_moved = migrator.pages_transferred();
  result.link = Snapshot(link);
  victim.reset();
  migrator.Stop();
  return result;
}

struct BulkResult {
  uint64_t transfer_us = 0;
  LinkStats link;
};

// One 64-page message through a proxy: the transport fragments it, and a
// dropped fragment costs one fragment on the wire, not the whole message.
BulkResult RunBulk(NetLatencyModel latency, int drop_pct) {
  auto src = MakeHost("src", kPages + 128);
  auto dst = MakeHost("dst", kPages + 128);
  SimClock net_clock;
  FaultInjector inj(43);
  NetLink link(&src->vm(), &dst->vm(), &net_clock, latency, FaultPlan(&inj, drop_pct));

  std::shared_ptr<Task> task_a = src->CreateTask();
  VmOffset base = task_a->VmAllocate(kPages * kPage).value();
  std::vector<uint8_t> payload(kPages * kPage);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 31);
  }
  task_a->Write(base, payload.data(), payload.size());
  auto copy = src->vm().CopyIn(task_a->vm_context(), base, kPages * kPage).value();

  PortPair sink = PortAllocate("bulk-sink");
  SendRight proxy = link.ProxyForA(sink.send);
  Message msg(1);
  msg.PushOol(copy, kPages * kPage);
  uint64_t net_before = net_clock.NowNs();
  MsgSend(proxy, std::move(msg));
  Result<Message> got = MsgReceive(sink.receive, std::chrono::seconds(30));
  BulkResult result;
  result.transfer_us = (net_clock.NowNs() - net_before) / 1000;
  result.link = Snapshot(link);
  if (!got.ok()) {
    std::fprintf(stderr, "bulk transfer lost (drop %d%%)\n", drop_pct);
  }
  task_a.reset();
  return result;
}

void PrintLinkJson(const LinkStats& s) {
  std::printf(
      "\"payload_bytes\": %llu, \"retransmitted_bytes\": %llu, \"retrans_ratio\": %.4f, "
      "\"fragments_sent\": %llu, \"fragments_retransmitted\": %llu, \"sacks_sent\": %llu, "
      "\"messages_lost\": %llu",
      (unsigned long long)s.payload_bytes, (unsigned long long)s.retransmitted_bytes,
      s.retrans_ratio, (unsigned long long)s.fragments_sent,
      (unsigned long long)s.fragments_retransmitted, (unsigned long long)s.sacks_sent,
      (unsigned long long)s.messages_lost);
}

}  // namespace

int main() {
  struct Regime {
    const char* name;
    NetLatencyModel latency;
  };
  const Regime regimes[] = {{"numa", kNumaLatency}, {"norma", kNormaLatency}};
  const int drops[] = {0, 1, 5, 10};

  std::fprintf(stderr, "E6+: 64-page migration and bulk transfer vs fragment drop rate\n");
  std::fprintf(stderr, "%-8s %6s %12s %12s %14s %9s\n", "regime", "drop%", "resume(us)",
               "total(us)", "bulk(us)", "retrans%");

  std::printf("{\n  \"benchmark\": \"migration_drop_sweep\",\n  \"pages\": %llu,\n",
              (unsigned long long)kPages);
  std::printf("  \"configs\": [\n");
  bool first = true;
  for (const Regime& regime : regimes) {
    for (int drop : drops) {
      MigrateResult m = RunMigration(regime.latency, drop);
      BulkResult b = RunBulk(regime.latency, drop);
      if (!first) {
        std::printf(",\n");
      }
      first = false;
      std::printf("    {\"latency\": \"%s\", \"drop_pct\": %d,\n", regime.name, drop);
      std::printf("     \"migration\": {\"resume_us\": %llu, \"total_us\": %llu, "
                  "\"pages_moved\": %llu, ",
                  (unsigned long long)m.resume_us, (unsigned long long)m.total_us,
                  (unsigned long long)m.pages_moved);
      PrintLinkJson(m.link);
      std::printf("},\n     \"bulk_64p\": {\"transfer_us\": %llu, ",
                  (unsigned long long)b.transfer_us);
      PrintLinkJson(b.link);
      std::printf("}}");
      std::fprintf(stderr, "%-8s %6d %12llu %12llu %14llu %8.1f%%\n", regime.name, drop,
                   (unsigned long long)m.resume_us, (unsigned long long)m.total_us,
                   (unsigned long long)b.transfer_us, 100.0 * b.link.retrans_ratio);
    }
  }
  std::printf("\n  ]\n}\n");
  std::fprintf(stderr,
               "\nshape: copy-on-reference resumes immediately at every drop rate; the\n"
               "selective-repeat transport keeps retransmitted bytes a small fraction\n"
               "of payload (< 25%% at 10%% drop) because only missing fragments resend.\n");
  return 0;
}
