// E1 (§9): "Compilation of a small program cached in memory ... running
// Mach is twice as fast as when running the more conventional SunOS 3.2."
//
// A small program is built twice on each I/O system. The second (cached)
// build is the §9 comparison: on Mach the whole working set sits in the
// kernel's page cache; on traditional UNIX only 10% of memory caches
// blocks, so the rebuild still pays disk time. Reported time is simulated
// I/O time on identical disk models.

#include <cstdio>

#include "bench/compile_workload.h"

using namespace mach_bench;

namespace {
// The compiler's own CPU time, modelled per page processed. §9's 2x is an
// end-to-end compile-time ratio: on the SunOS side of the comparison, I/O
// and compute were comparable halves of a cached small build — the cache
// removes (most of) the I/O half. 5 ms/page is a mid-80s workstation
// compiler pass over 4 KB of source.
constexpr double kCpuMsPerPage = 5.0;

double CpuMs(const CompileConfig& c) {
  double pages_per_module =
      c.source_pages + c.headers * c.header_pages + c.source_pages /* object out */;
  return c.modules * pages_per_module * kCpuMsPerPage;
}
}  // namespace

int main() {
  std::printf("E1: cached small compilation — Mach mapped files vs traditional "
              "buffered I/O (10%% buffer cache)\n");
  CompileConfig config;  // Small program: fits the kernel cache, not the 10% cache.
  const double cpu_ms = CpuMs(config);
  std::printf("(compiler CPU model: %.1f ms/page -> %.0f ms of compute per build)\n\n",
              kCpuMsPerPage, cpu_ms);
  std::printf("%-30s %12s %12s %14s\n", "build", "disk ops", "I/O ms", "total ms");

  double mach_warm_total = 0, trad_warm_total = 0;
  uint64_t mach_warm_ops = 0;
  {
    MachBuildEnv env(config);
    CompileResult cold = env.Build();
    CompileResult warm = env.Build();  // Rebuild: the §9 "cached" case.
    std::printf("%-30s %12llu %12.1f %14.1f\n", "mach cold build",
                (unsigned long long)cold.disk_ops, cold.virtual_ns / 1e6,
                cold.virtual_ns / 1e6 + cpu_ms);
    std::printf("%-30s %12llu %12.1f %14.1f\n", "mach warm (cached) build",
                (unsigned long long)warm.disk_ops, warm.virtual_ns / 1e6,
                warm.virtual_ns / 1e6 + cpu_ms);
    mach_warm_total = warm.virtual_ns / 1e6 + cpu_ms;
    mach_warm_ops = warm.disk_ops;
  }
  {
    TraditionalBuildEnv env(config);
    CompileResult cold = env.Build();
    CompileResult warm = env.Build();
    std::printf("%-30s %12llu %12.1f %14.1f\n", "traditional cold build",
                (unsigned long long)cold.disk_ops, cold.virtual_ns / 1e6,
                cold.virtual_ns / 1e6 + cpu_ms);
    std::printf("%-30s %12llu %12.1f %14.1f\n", "traditional warm build",
                (unsigned long long)warm.disk_ops, warm.virtual_ns / 1e6,
                warm.virtual_ns / 1e6 + cpu_ms);
    trad_warm_total = warm.virtual_ns / 1e6 + cpu_ms;
  }
  std::printf("\ncached-compilation speedup (traditional/mach, end to end): %.2fx  "
              "(paper: ~2x)\n",
              trad_warm_total / mach_warm_total);
  std::printf("note: mach warm build did %llu disk ops — the mapped-file cache "
              "absorbed the working set (§9)\n",
              (unsigned long long)mach_warm_ops);
  return 0;
}
