// E2 (§9): "In a large system compilation, the total number of I/O
// operations can be reduced by a factor of 10."
//
// A large build whose working set dwarfs the traditional 10% buffer cache
// but fits the Mach page cache. Each I/O system performs the identical
// multi-pass build (the large shared-header re-reference pattern of system
// builds); the reported metric is the ratio of disk operations.

#include <cstdio>

#include "bench/compile_workload.h"

using namespace mach_bench;

int main() {
  std::printf("E2: large system compilation — total I/O operations\n\n");
  std::printf("%-10s %-10s %12s %12s %12s %10s\n", "modules", "headers", "mach ops",
              "trad ops", "reduction", "");

  // Sweep build sizes; the reduction grows as the shared-header working set
  // outgrows the 10% buffer cache (102 blocks on this 4 MB machine) while
  // staying inside the Mach page cache. Steady state: each environment is
  // measured on its second build.
  struct Row {
    int modules;
    int headers;
  };
  const Row rows[] = {{12, 12}, {16, 16}, {32, 24}, {48, 32}};
  for (const Row& row : rows) {
    CompileConfig config;
    config.frames = 1024;  // 4 MB machine: 10% buffer cache = 102 blocks.
    config.modules = row.modules;
    config.headers = row.headers;
    config.header_pages = 6;
    uint64_t mach_ops = 0, trad_ops = 0;
    {
      // Whole cold build: Mach reads each file from disk once; after that
      // the page cache serves every re-reference.
      MachBuildEnv env(config);
      mach_ops = env.Build().disk_ops;
    }
    {
      TraditionalBuildEnv env(config);
      trad_ops = env.Build().disk_ops;
    }
    std::printf("%-10d %-10d %12llu %12llu %11.1fx %10s\n", row.modules, row.headers,
                (unsigned long long)mach_ops, (unsigned long long)trad_ops,
                static_cast<double>(trad_ops) / (mach_ops ? mach_ops : 1),
                row.modules == 48 ? "(paper: ~10x)" : "");
  }
  std::printf("\nshape: the traditional path re-reads every shared header per module\n"
              "once the 10%% buffer cache thrashes; the Mach path reads each header\n"
              "from disk once and serves the rest from the page cache.\n");
  return 0;
}
