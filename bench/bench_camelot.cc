// E8 (§8.3): Camelot-style recoverable virtual memory.
//
//   * commit throughput vs transaction size (each commit forces the log;
//     bigger transactions amortise the force);
//   * the WAL rule under memory pressure (log forces caused by pageout);
//   * recovery cost as a function of log length.

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_env.h"
#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/camelot/recovery_manager.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;

using Env = BenchEnv;

}  // namespace

int main() {
  std::printf("E8: recoverable virtual memory (Camelot-style, Sec 8.3)\n\n");

  // Part 1: commit cost vs transaction size.
  std::printf("part 1: commit throughput vs writes per transaction\n");
  std::printf("  %10s %10s %14s %16s %14s\n", "writes/txn", "txns", "log forces",
              "log I/O ms (sim)", "us/write (sim)");
  for (int writes_per_txn : {1, 4, 16, 64}) {
    Env env(512);
    RecoverableSegment seg =
        RecoverableSegment::Map(env.rm.get(), env.task.get(), "db", 64 * kPage).value();
    const int total_writes = 256;
    int txns = total_writes / writes_per_txn;
    uint64_t ns_before = env.kernel->clock().NowNs();
    uint64_t forces_before = env.rm->log_force_count();
    uint32_t rng = 7;
    for (int t = 0; t < txns; ++t) {
      Transaction txn(env.rm.get());
      for (int w = 0; w < writes_per_txn; ++w) {
        rng = rng * 1664525 + 1013904223;
        VmOffset off = (rng % (64 * kPage / 64)) * 64;
        uint64_t v = rng;
        txn.Write(seg, off, &v, sizeof(v));
      }
      txn.Commit();
    }
    uint64_t sim_ms = (env.kernel->clock().NowNs() - ns_before) / 1'000'000;
    uint64_t forces = env.rm->log_force_count() - forces_before;
    std::printf("  %10d %10d %14llu %16llu %14.1f\n", writes_per_txn, txns,
                (unsigned long long)forces, (unsigned long long)sim_ms,
                sim_ms * 1000.0 / total_writes);
  }
  std::printf("  shape: one force per commit — larger transactions amortise it.\n\n");

  // Part 2: WAL rule under memory pressure.
  std::printf("part 2: WAL enforcement when dirty recoverable pages are evicted\n");
  {
    Env env(64);  // Tiny memory: eviction guaranteed.
    RecoverableSegment seg =
        RecoverableSegment::Map(env.rm.get(), env.task.get(), "big", 128 * kPage).value();
    Transaction txn(env.rm.get());
    for (VmOffset p = 0; p < 128; ++p) {
      uint64_t v = p;
      txn.Write(seg, p * kPage, &v, sizeof(v));
    }
    txn.Commit();
    std::printf("  pageouts=%llu  wal-enforced log forces before page writes=%llu\n",
                (unsigned long long)env.rm->pageout_count(),
                (unsigned long long)env.rm->wal_enforced_count());
    std::printf("  shape: every eviction verified the rule; a force was issued exactly\n"
                "  when records describing the page were still volatile (Sec 8.3:\n"
                "  \"verifies that the proper log records have been written\").\n\n");
  }

  // Part 3: recovery time vs log length.
  std::printf("part 3: recovery cost vs log length\n");
  std::printf("  %12s %14s %16s\n", "log records", "recover ms", "records/ms");
  for (int txns : {50, 200, 800}) {
    Env env(512);
    RecoverableSegment seg =
        RecoverableSegment::Map(env.rm.get(), env.task.get(), "r", 16 * kPage).value();
    uint32_t rng = 3;
    for (int t = 0; t < txns; ++t) {
      Transaction txn(env.rm.get());
      for (int w = 0; w < 2; ++w) {
        rng = rng * 1664525 + 1013904223;
        uint64_t v = rng;
        txn.Write(seg, (rng % 1024) * 64, &v, sizeof(v));
      }
      if (t % 4 == 0) {
        txn.Abort();
      } else {
        txn.Commit();
      }
    }
    env.rm->SimulateCrash();
    auto start = std::chrono::steady_clock::now();
    env.rm->Recover();
    double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                          start)
                    .count();
    int records = txns * 4;  // begin + 2 updates + outcome (approx.)
    std::printf("  %12d %14.2f %16.0f\n", records, ms, records / (ms > 0 ? ms : 1));
  }
  std::printf("  shape: recovery cost is linear in log length.\n");
  return 0;
}
