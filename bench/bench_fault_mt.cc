// E11 (§5.5 on a multiprocessor): fault-path scaling under the VM lock
// hierarchy. Concurrent faults that share nothing — disjoint regions of one
// address map — should scale with the thread count, because they take the
// map lock shared and meet only in per-object locks, hash shards and the
// page queues. Faults that genuinely share state (copy-on-write pushes out
// of one inherited object) contend on that object's lock and bound the
// speedup; both flavours are reported at 1/2/4/8 threads.
//
// Each thread gets a fixed page budget (Iterations below), so a run never
// wraps back onto resident pages and every timed access is a real fault.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;
constexpr int kPagesPerThread = 2048;
constexpr int kMaxThreads = 8;

std::unique_ptr<Kernel> MakeKernel(uint32_t frames) {
  Kernel::Config config;
  config.frames = frames;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  return std::make_unique<Kernel>(config);
}

// Shared across the threads of one benchmark run. Thread 0 sets up before
// the first iteration barrier and tears down after the last.
struct MtState {
  std::unique_ptr<Kernel> kernel;
  std::shared_ptr<Task> task;
  std::shared_ptr<Task> child;
  VmOffset base = 0;
};
MtState g_mt;

// Zero-fill faults in disjoint regions of one task map: the no-sharing
// case. Aggregate items/s across threads is the scaling headline.
void BM_FaultMtDisjointZeroFill(benchmark::State& state) {
  const VmSize region = VmSize{kPagesPerThread} * kPage;
  if (state.thread_index() == 0) {
    // Frames for every thread's pages plus slack so reclaim never runs.
    g_mt.kernel = MakeKernel(kMaxThreads * kPagesPerThread + 1024);
    g_mt.task = g_mt.kernel->CreateTask();
    g_mt.base = g_mt.task->VmAllocate(VmSize{kMaxThreads} * region).value();
  }
  VmOffset next = g_mt.base + static_cast<VmOffset>(state.thread_index()) * region;
  uint8_t b = 1;
  for (auto _ : state) {
    g_mt.task->Write(next, &b, 1);  // One fresh page: allocate + zero + map.
    next += kPage;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    g_mt.task.reset();
    g_mt.kernel.reset();
  }
}

// Copy-on-write faults against one inherited object: every thread pushes
// private copies of distinct pages out of the same shadow chain, so the
// source object's lock is the shared resource.
void BM_FaultMtSharedCow(benchmark::State& state) {
  const VmSize region = VmSize{kPagesPerThread} * kPage;
  if (state.thread_index() == 0) {
    g_mt.kernel = MakeKernel(2 * kMaxThreads * kPagesPerThread + 1024);
    g_mt.task = g_mt.kernel->CreateTask();
    g_mt.base = g_mt.task->VmAllocate(VmSize{kMaxThreads} * region).value();
    std::vector<uint8_t> init(VmSize{kMaxThreads} * region, 0x7);
    g_mt.task->Write(g_mt.base, init.data(), init.size());
    g_mt.child = g_mt.kernel->CreateTask(g_mt.task);  // COW view of it all.
  }
  VmOffset next = g_mt.base + static_cast<VmOffset>(state.thread_index()) * region;
  uint8_t b = 9;
  for (auto _ : state) {
    g_mt.child->Write(next, &b, 1);  // Shadow-chain walk + page copy.
    next += kPage;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    VmStatistics stats = g_mt.kernel->vm().Statistics();
    state.counters["cow_faults"] = static_cast<double>(stats.cow_faults);
    state.counters["spurious_wakeups"] = static_cast<double>(stats.spurious_page_wakeups);
    g_mt.child.reset();
    g_mt.task.reset();
    g_mt.kernel.reset();
  }
}

// Read faults through one *shared* (inheritance) region: threads fault the
// same pages of the same object, so resolution is all lookup — the sharded
// hash and per-object locks are what is being exercised.
void BM_FaultMtSharedRead(benchmark::State& state) {
  const VmSize region = VmSize{kPagesPerThread} * kPage;
  if (state.thread_index() == 0) {
    g_mt.kernel = MakeKernel(2 * kPagesPerThread + 1024);
    g_mt.task = g_mt.kernel->CreateTask();
    g_mt.base = g_mt.task->VmAllocate(region).value();
    std::vector<uint8_t> init(region, 0x5);
    g_mt.task->Write(g_mt.base, init.data(), init.size());
  }
  VmOffset next = g_mt.base;
  uint8_t b = 0;
  for (auto _ : state) {
    // Drop this page's translation, then touch: resident-page fault.
    VmOffset page = next;
    g_mt.task->vm_context().pmap->Remove(page, page + kPage);
    g_mt.task->Read(page, &b, 1);
    next += kPage;
    if (next == g_mt.base + region) {
      next = g_mt.base;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    VmStatistics stats = g_mt.kernel->vm().Statistics();
    state.counters["fast_faults"] = static_cast<double>(stats.fast_faults);
    g_mt.task.reset();
    g_mt.kernel.reset();
  }
}

}  // namespace

BENCHMARK(BM_FaultMtDisjointZeroFill)
    ->Iterations(kPagesPerThread)
    ->ThreadRange(1, kMaxThreads)
    ->UseRealTime();
BENCHMARK(BM_FaultMtSharedCow)
    ->Iterations(kPagesPerThread)
    ->ThreadRange(1, kMaxThreads)
    ->UseRealTime();
BENCHMARK(BM_FaultMtSharedRead)
    ->Iterations(kPagesPerThread)
    ->ThreadRange(1, kMaxThreads)
    ->UseRealTime();

int main(int argc, char** argv) {
  // Scaling numbers from a single-CPU host are not scaling numbers: every
  // "concurrent" thread is time-sliced, so 2/4/8-thread rows measure the
  // scheduler, not the lock hierarchy. Flag such runs loudly in both the
  // human-readable stream and the JSON context so a reader (or a tooling
  // diff) can discount them.
  const unsigned cpus = std::thread::hardware_concurrency();
  benchmark::AddCustomContext("single_cpu_host", cpus <= 1 ? "true" : "false");
  benchmark::AddCustomContext("host_cpus", std::to_string(cpus));
  if (cpus <= 1) {
    fprintf(stderr,
            "*** WARNING: single-CPU host detected (hardware_concurrency=%u).\n"
            "*** Multi-threaded rows below measure time-slicing, not parallel\n"
            "*** scaling; treat every thread-count > 1 result as invalid.\n",
            cpus);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
