// E3 (§1/§2 duality claim): "Mach uses memory-mapping techniques to make
// the passing of large messages ... more efficient" — out-of-line transfer
// by copy-on-write mapping vs. carrying the bytes inline (physical copy).
//
// google-benchmark microbenchmark: one message round through a port, with
// the payload either inline-copied or moved as an out-of-line map copy that
// the receiver maps (and, in the _Touched variants, then reads).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;

struct Env {
  Env() {
    Kernel::Config config;
    config.frames = 4096;  // 16 MB: transfers must not trigger paging.
    config.page_size = kPage;
    config.disk_latency = DiskLatencyModel{0, 0};
    kernel = std::make_unique<Kernel>(config);
    sender = kernel->CreateTask(nullptr, "sender");
    receiver = kernel->CreateTask(nullptr, "receiver");
  }
  std::unique_ptr<Kernel> kernel;
  std::shared_ptr<Task> sender;
  std::shared_ptr<Task> receiver;
};

Env* env() {
  static Env e;
  return &e;
}

// Inline: the message carries a byte copy of the region (copy out of the
// sender, copy into the receiver) — the traditional message-passing cost.
void BM_InlineTransfer(benchmark::State& state) {
  Env* e = env();
  const VmSize size = static_cast<VmSize>(state.range(0));
  VmOffset src = e->sender->VmAllocate(size).value();
  std::vector<std::byte> stage(size, std::byte{0x44});
  e->sender->Write(src, stage.data(), size);
  PortPair port = PortAllocate("inline");
  VmOffset dst = e->receiver->VmAllocate(size).value();
  for (auto _ : state) {
    // Sender: copy out of its address space into the message.
    e->sender->Read(src, stage.data(), size);
    Message msg(1);
    msg.PushData(stage.data(), size);
    MsgSend(port.send, std::move(msg));
    Result<Message> got = MsgReceive(port.receive);
    // Receiver: copy the message body into its address space.
    std::vector<std::byte> body = std::move(got).value().TakeBytes().value();
    e->receiver->Write(dst, body.data(), body.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
  e->sender->VmDeallocate(src, size);
  e->receiver->VmDeallocate(dst, size);
}

// Out-of-line: the message carries a copy-on-write map copy; the receiver
// maps it. No bytes move unless someone writes.
void BM_OolTransfer(benchmark::State& state) {
  Env* e = env();
  const VmSize size = static_cast<VmSize>(state.range(0));
  VmOffset src = e->sender->VmAllocate(size).value();
  std::vector<std::byte> stage(size, std::byte{0x55});
  e->sender->Write(src, stage.data(), size);
  PortPair port = PortAllocate("ool");
  for (auto _ : state) {
    auto copy = e->kernel->vm().CopyIn(e->sender->vm_context(), src, size).value();
    Message msg(1);
    msg.PushOol(copy, size);
    MsgSend(port.send, std::move(msg));
    Result<Message> got = MsgReceive(port.receive);
    auto received = std::static_pointer_cast<VmMapCopy>(got.value().TakeOol().value().copy);
    VmOffset dst = e->kernel->vm().CopyOut(e->receiver->vm_context(), received).value();
    e->receiver->VmDeallocate(dst, size);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
  e->sender->VmDeallocate(src, size);
}

// Out-of-line + the receiver reads every page (pays the mapping faults —
// read-only, still no page copies).
void BM_OolTransferTouched(benchmark::State& state) {
  Env* e = env();
  const VmSize size = static_cast<VmSize>(state.range(0));
  VmOffset src = e->sender->VmAllocate(size).value();
  std::vector<std::byte> stage(size, std::byte{0x66});
  e->sender->Write(src, stage.data(), size);
  PortPair port = PortAllocate("ool-touch");
  uint64_t sink = 0;
  for (auto _ : state) {
    auto copy = e->kernel->vm().CopyIn(e->sender->vm_context(), src, size).value();
    Message msg(1);
    msg.PushOol(copy, size);
    MsgSend(port.send, std::move(msg));
    Result<Message> got = MsgReceive(port.receive);
    auto received = std::static_pointer_cast<VmMapCopy>(got.value().TakeOol().value().copy);
    VmOffset dst = e->kernel->vm().CopyOut(e->receiver->vm_context(), received).value();
    for (VmOffset off = 0; off < size; off += kPage) {
      uint64_t v = 0;
      e->receiver->Read(dst + off, &v, sizeof(v));
      sink ^= v;
    }
    e->receiver->VmDeallocate(dst, size);
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
  e->sender->VmDeallocate(src, size);
}

}  // namespace

BENCHMARK(BM_InlineTransfer)->Arg(4096)->Arg(65536)->Arg(1 << 20)->Arg(4 << 20);
BENCHMARK(BM_OolTransfer)->Arg(4096)->Arg(65536)->Arg(1 << 20)->Arg(4 << 20);
BENCHMARK(BM_OolTransferTouched)->Arg(4096)->Arg(65536)->Arg(1 << 20)->Arg(4 << 20);

BENCHMARK_MAIN();
