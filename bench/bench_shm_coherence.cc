// E5 + E9 (§7, after Li & Hudak): network shared memory efficiency as a
// function of (a) the write-sharing ratio of the workload and (b) the
// machine class (UMA / NUMA / NORMA latency regimes).
//
// Two hosts share a region through the shared-memory server; host B reaches
// it over a NetLink with the regime's latency. Each host performs a fixed
// number of accesses; a fraction `write_pct` are writes to *shared* pages
// (forcing ownership transfers), the rest are reads of host-private pages
// (which settle into the local cache). Reported: coherence message count
// and simulated network time — the §7 claim is that low write-sharing makes
// remote memory cost near-local, while the NORMA regime multiplies every
// transfer by its per-message latency.

#include <cstdio>
#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/shm/shm_server.h"
#include "src/net/net_link.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;
constexpr int kAccessesPerHost = 400;
constexpr VmSize kSharedPages = 4;
constexpr VmSize kPrivatePages = 16;  // Per host.

std::unique_ptr<Kernel> MakeHost(const std::string& name) {
  Kernel::Config config;
  config.name = name;
  config.frames = 256;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  return std::make_unique<Kernel>(config);
}

struct RunResult {
  uint64_t link_messages = 0;
  uint64_t net_ms_x1000 = 0;  // Simulated microseconds on the wire.
  uint64_t invalidations = 0;
  uint64_t recalls = 0;
};

RunResult RunWorkload(NetLatencyModel latency, int write_pct) {
  auto host_a = MakeHost("a");
  auto host_b = MakeHost("b");
  SimClock net_clock;
  NetLink link(&host_a->vm(), &host_b->vm(), &net_clock, latency);
  SharedMemoryServer server(kPage);
  server.Start();

  const VmSize region_pages = kSharedPages + 2 * kPrivatePages;
  SendRight region = server.GetRegion("bench", region_pages * kPage);
  std::shared_ptr<Task> task_a = host_a->CreateTask();
  std::shared_ptr<Task> task_b = host_b->CreateTask();
  VmOffset a = task_a->VmAllocateWithPager(region_pages * kPage, region, 0).value();
  VmOffset b =
      task_b->VmAllocateWithPager(region_pages * kPage, link.ProxyForB(region), 0).value();

  auto worker = [&](Task& task, VmOffset base, VmOffset private_page0, uint32_t seed) {
    uint32_t rng = seed;
    for (int i = 0; i < kAccessesPerHost; ++i) {
      rng = rng * 1664525 + 1013904223;
      bool write_shared = static_cast<int>(rng % 100) < write_pct;
      if (write_shared) {
        VmOffset page = kSharedPages ? (rng / 100) % kSharedPages : 0;
        uint64_t v = seed + i;
        task.WriteValue<uint64_t>(base + page * kPage, v);
      } else {
        VmOffset page = private_page0 + (rng / 100) % kPrivatePages;
        uint64_t v = 0;
        task.Read(base + page * kPage, &v, sizeof(v));
      }
    }
  };
  // Run both hosts concurrently on their own threads.
  std::shared_ptr<Thread> ta = task_a->SpawnThread(
      [&](Thread& self) { worker(self.task(), a, kSharedPages, 1); });
  std::shared_ptr<Thread> tb = task_b->SpawnThread(
      [&](Thread& self) { worker(self.task(), b, kSharedPages + kPrivatePages, 2); });
  ta->Join();
  tb->Join();

  RunResult result;
  result.link_messages = link.messages_forwarded();
  result.net_ms_x1000 = net_clock.NowNs() / 1000;
  result.invalidations = server.invalidations();
  result.recalls = server.recalls();
  task_a.reset();
  task_b.reset();
  server.Stop();
  return result;
}

}  // namespace

int main() {
  std::printf("E5/E9: network shared memory — coherence traffic vs write sharing,\n"
              "       across the Sec.7 machine classes\n\n");
  std::printf("(2 hosts x %d accesses; %llu shared + %llu private pages per host)\n\n",
              kAccessesPerHost, (unsigned long long)kSharedPages,
              (unsigned long long)kPrivatePages);
  struct Regime {
    const char* name;
    NetLatencyModel latency;
    const char* note;
  };
  const Regime regimes[] = {
      {"UMA   (MultiMax bus)", kUmaLatency, "<1us/transfer"},
      {"NUMA  (Butterfly switch)", kNumaLatency, "~5us, ~10x local"},
      {"NORMA (HyperCube network)", kNormaLatency, "100s of us"},
  };
  const int write_pcts[] = {0, 2, 10, 50};

  for (const Regime& regime : regimes) {
    std::printf("%-28s %s\n", regime.name, regime.note);
    std::printf("  %10s %12s %12s %12s %14s\n", "write%", "link msgs", "invalidat.",
                "recalls", "net time (us)");
    for (int wp : write_pcts) {
      RunResult r = RunWorkload(regime.latency, wp);
      std::printf("  %10d %12llu %12llu %12llu %14llu\n", wp,
                  (unsigned long long)r.link_messages, (unsigned long long)r.invalidations,
                  (unsigned long long)r.recalls, (unsigned long long)r.net_ms_x1000);
    }
    std::printf("\n");
  }
  std::printf("shape: traffic grows with write sharing (ownership transfers), and the\n"
              "same message count costs ~10x more wire time on the NUMA model and\n"
              "~100-1000x more on the NORMA model than on the UMA model (Sec.7).\n");
  return 0;
}
