// E14 (§4.2/§7, after Li & Hudak): centralised vs sharded shared-memory
// directory — an ablation over shard count × host count × write sharing.
//
// Every host maps the same region; each performs a fixed sweep of cold
// write faults over its own *private* pages (disjoint working sets) plus an
// optional fraction of writes into a small *shared* pool all hosts contend
// on (ownership ping-pong: forwards, recalls, hint traffic).
//
// This machine is a single-CPU host, so wall-clock cannot show directory
// parallelism. Instead every directory charges a modeled service cost
// (ShmOptions::service_cost_ns) per coherence action into its own
// ShmCounters::service_ns, and the report derives
//
//   makespan  = max over directory instances of service_ns
//   speedup   = sum(service_ns) / makespan
//
// The centralised arm (the old SharedMemoryServer — one directory, one
// lock, one request port) serialises every action, so its makespan equals
// the total and its throughput stays flat no matter the shard axis. The
// sharded arm partitions the page space by SplitMix64 hash across N
// independent directories, so disjoint-page load spreads and throughput
// grows near-linearly in N — bounded only by hash balance. Write sharing
// adds forwards/recalls against the hinted owner; the hint counters in the
// JSON show the chase machinery at work.
//
// Output: the JSON document on stdout (ci.sh bench captures it into
// BENCH_shm_coherence.json); a human-readable table on stderr.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/task.h"
#include "src/managers/shm/shm_broker.h"
#include "src/managers/shm/shm_server.h"

namespace {

using namespace mach;

constexpr VmSize kPage = 4096;
constexpr VmSize kSharedPages = 4;    // Contended pool, all hosts.
constexpr VmSize kPrivatePages = 48;  // Cold-write sweep, per host.
constexpr uint64_t kServiceCostNs = 1000;  // Modeled cost per directory action.

std::unique_ptr<Kernel> MakeHost(const std::string& name) {
  Kernel::Config config;
  config.name = name;
  config.frames = 512;
  config.page_size = kPage;
  config.disk_latency = DiskLatencyModel{0, 0};
  return std::make_unique<Kernel>(config);
}

struct Cell {
  std::string arm;  // "centralized" | "sharded"
  size_t shards = 1;
  int hosts = 0;
  int write_pct = 0;
  uint64_t actions = 0;      // Total directory coherence actions.
  uint64_t total_ns = 0;     // Sum of modeled service time over directories.
  uint64_t makespan_ns = 0;  // Busiest directory's modeled service time.
  double speedup = 0.0;      // total_ns / makespan_ns (1.0 == serialised).
  double throughput_actions_per_ms = 0.0;
  uint64_t wall_ms = 0;
  ShmCounters counters;
};

// One host's access sweep: a cold write to each of its private pages,
// interleaved with writes into the shared pool every `1/write_pct` steps.
void HostSweep(Task& task, VmOffset base, int host_index, int write_pct) {
  const VmOffset private0 = kSharedPages + static_cast<VmOffset>(host_index) * kPrivatePages;
  int shared_i = 0;
  for (VmOffset i = 0; i < kPrivatePages; ++i) {
    uint64_t v = (static_cast<uint64_t>(host_index) << 32) | i;
    task.WriteValue<uint64_t>(base + (private0 + i) * kPage, v);
    if (write_pct > 0 && static_cast<int>(i % (100 / write_pct)) == 0) {
      VmOffset sp = static_cast<VmOffset>(shared_i++) % kSharedPages;
      task.WriteValue<uint64_t>(base + sp * kPage, v ^ 0xBEEF);
    }
  }
}

Cell RunCell(const std::string& arm, size_t shards, int hosts, int write_pct) {
  Cell cell;
  cell.arm = arm;
  cell.shards = arm == "centralized" ? 1 : shards;
  cell.hosts = hosts;
  cell.write_pct = write_pct;

  ShmOptions options;
  options.page_size = kPage;
  options.service_cost_ns = kServiceCostNs;

  const VmSize region_pages = kSharedPages + static_cast<VmSize>(hosts) * kPrivatePages;

  std::unique_ptr<SharedMemoryServer> server;
  std::unique_ptr<ShmBroker> broker;
  SendRight central_region;
  ShmRegionInfoArgs info;
  if (arm == "centralized") {
    server = std::make_unique<SharedMemoryServer>(options);
    server->Start();
    central_region = server->GetRegion("bench", region_pages * kPage);
  } else {
    broker = std::make_unique<ShmBroker>("bench", shards, options);
    broker->Start();
    info = broker->GetRegion("bench", region_pages * kPage);
  }

  std::vector<std::unique_ptr<Kernel>> kernels;
  std::vector<std::shared_ptr<Task>> tasks;
  std::vector<VmOffset> bases;
  for (int h = 0; h < hosts; ++h) {
    kernels.push_back(MakeHost("h" + std::to_string(h)));
    tasks.push_back(kernels.back()->CreateTask());
    if (arm == "centralized") {
      bases.push_back(
          tasks.back()->VmAllocateWithPager(region_pages * kPage, central_region, 0).value());
    } else {
      bases.push_back(ShmBroker::MapRegion(*tasks.back(), info).value());
    }
  }

  auto start = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<Thread>> threads;
  for (int h = 0; h < hosts; ++h) {
    threads.push_back(tasks[h]->SpawnThread([&, h](Thread& self) {
      HostSweep(self.task(), bases[h], h, write_pct);
    }));
  }
  for (auto& t : threads) {
    t->Join();
  }
  // Let trailing downgrade/writeback traffic settle before the snapshot.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cell.wall_ms = static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                           std::chrono::steady_clock::now() - start)
                                           .count());

  if (arm == "centralized") {
    cell.counters = server->directory().counters();
    cell.total_ns = cell.counters.service_ns;
    cell.makespan_ns = cell.counters.service_ns;
  } else {
    cell.counters = broker->aggregate_counters();
    cell.total_ns = cell.counters.service_ns;
    cell.makespan_ns = broker->max_shard_service_ns();
  }
  cell.actions = cell.total_ns / kServiceCostNs;
  cell.speedup =
      cell.makespan_ns ? static_cast<double>(cell.total_ns) / cell.makespan_ns : 0.0;
  cell.throughput_actions_per_ms =
      cell.makespan_ns ? static_cast<double>(cell.actions) * 1e6 / cell.makespan_ns : 0.0;

  for (auto& t : tasks) {
    t.reset();
  }
  if (server) {
    server->Stop();
  }
  if (broker) {
    broker->Stop();
  }
  return cell;
}

void EmitCell(const Cell& c, bool last) {
  const ShmCounters& k = c.counters;
  std::printf(
      "    {\"arm\": \"%s\", \"shards\": %zu, \"hosts\": %d, \"write_pct\": %d,\n"
      "     \"actions\": %llu, \"total_service_ns\": %llu, \"makespan_ns\": %llu,\n"
      "     \"speedup\": %.3f, \"throughput_actions_per_ms\": %.1f, \"wall_ms\": %llu,\n"
      "     \"counters\": {\"read_grants\": %llu, \"write_grants\": %llu,"
      " \"invalidations\": %llu, \"recalls\": %llu, \"forwards\": %llu,"
      " \"hint_hits\": %llu, \"hint_repairs\": %llu, \"stale_hints\": %llu,"
      " \"ownership_transfers\": %llu, \"downgrades\": %llu,"
      " \"recall_acks\": %llu, \"recall_timeouts\": %llu}}%s\n",
      c.arm.c_str(), c.shards, c.hosts, c.write_pct, (unsigned long long)c.actions,
      (unsigned long long)c.total_ns, (unsigned long long)c.makespan_ns, c.speedup,
      c.throughput_actions_per_ms, (unsigned long long)c.wall_ms,
      (unsigned long long)k.read_grants, (unsigned long long)k.write_grants,
      (unsigned long long)k.invalidations, (unsigned long long)k.recalls,
      (unsigned long long)k.forwards, (unsigned long long)k.hint_hits,
      (unsigned long long)k.hint_repairs, (unsigned long long)k.stale_hints,
      (unsigned long long)k.ownership_transfers, (unsigned long long)k.downgrades,
      (unsigned long long)k.recall_acks, (unsigned long long)k.recall_timeouts,
      last ? "" : ",");
}

}  // namespace

int main() {
  const size_t shard_axis[] = {1, 2, 4, 8};
  const int host_axis[] = {2, 4};
  const int write_pcts[] = {0, 25};

  std::fprintf(stderr,
               "E14: centralised vs sharded shm directory (modeled %llu ns/action)\n"
               "  %-12s %6s %5s %7s %9s %12s %8s %10s %9s\n",
               (unsigned long long)kServiceCostNs, "arm", "shards", "hosts", "write%",
               "actions", "makespan_us", "speedup", "thru/ms", "hint_hits");

  std::vector<Cell> cells;
  for (int hosts : host_axis) {
    for (int wp : write_pcts) {
      for (size_t shards : shard_axis) {
        // The centralised arm does not vary along the shard axis; run it
        // once per (hosts, write_pct) and let the flat line speak.
        if (shards == shard_axis[0]) {
          cells.push_back(RunCell("centralized", 1, hosts, wp));
        }
        cells.push_back(RunCell("sharded", shards, hosts, wp));
      }
    }
  }
  for (const Cell& c : cells) {
    std::fprintf(stderr, "  %-12s %6zu %5d %7d %9llu %12.1f %8.2f %10.1f %9llu\n",
                 c.arm.c_str(), c.shards, c.hosts, c.write_pct, (unsigned long long)c.actions,
                 c.makespan_ns / 1000.0, c.speedup, c.throughput_actions_per_ms,
                 (unsigned long long)c.counters.hint_hits);
  }

  // Acceptance digests: sharded throughput must be monotonic in shard count
  // (>=2x by 4 shards) on the disjoint two-host config, and write sharing
  // must exercise the hint chain.
  double thru[9] = {0};  // Indexed by shard count, hosts=2, write_pct=0.
  uint64_t hint_hits_sharing = 0;
  for (const Cell& c : cells) {
    if (c.arm == "sharded" && c.hosts == 2 && c.write_pct == 0 && c.shards <= 8) {
      thru[c.shards] = c.throughput_actions_per_ms;
    }
    if (c.arm == "sharded" && c.hosts == 2 && c.write_pct > 0) {
      hint_hits_sharing += c.counters.hint_hits;
    }
  }
  bool monotonic = thru[1] <= thru[2] && thru[2] <= thru[4] && thru[4] <= thru[8];
  double speedup4 = thru[1] > 0 ? thru[4] / thru[1] : 0.0;

  std::printf("{\n");
  std::printf("  \"bench\": \"shm_coherence\",\n");
  std::printf("  \"page_size\": %llu,\n", (unsigned long long)kPage);
  std::printf("  \"service_cost_ns\": %llu,\n", (unsigned long long)kServiceCostNs);
  std::printf("  \"single_cpu_host\": true,\n");
  std::printf("  \"shared_pages\": %llu,\n", (unsigned long long)kSharedPages);
  std::printf("  \"private_pages_per_host\": %llu,\n", (unsigned long long)kPrivatePages);
  std::printf("  \"grid\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    EmitCell(cells[i], i + 1 == cells.size());
  }
  std::printf("  ],\n");
  std::printf("  \"acceptance\": {\n");
  std::printf("    \"sharded_monotonic_in_shards\": %s,\n", monotonic ? "true" : "false");
  std::printf("    \"sharded_speedup_at_4_shards\": %.3f,\n", speedup4);
  std::printf("    \"hint_hits_two_host_write_sharing\": %llu\n",
              (unsigned long long)hint_hits_sharing);
  std::printf("  }\n");
  std::printf("}\n");

  std::fprintf(stderr,
               "\nshape: the centralised directory serialises every action (speedup 1.0,\n"
               "flat throughput); the sharded directory spreads disjoint-page load by the\n"
               "page-hash, so throughput grows near-linearly in shard count (monotonic=%s,\n"
               "x%.2f at 4 shards). Write sharing drives forwards through the owner hint\n"
               "(hint_hits=%llu over the two-host cells).\n",
               monotonic ? "true" : "false", speedup4, (unsigned long long)hint_hits_sharing);
  return monotonic && speedup4 >= 2.0 && hint_hits_sharing > 0 ? 0 : 1;
}
